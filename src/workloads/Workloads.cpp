//===- workloads/Workloads.cpp - SPEC-like benchmark kernels ---------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <cstring>

using namespace smokestack;

namespace {

// Each kernel: a hot function with a characteristic frame, invoked Work
// times. Frames differ in slot count, buffer size, and arithmetic flavor
// to spread call frequency and frame size the way the SPEC mix does.

/// 400.perlbench-like: string hashing in a small frame at very high call
/// frequency and the suite's deepest call chains.
uint64_t runPerlbench(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{64, 1, "buf"}, {8, 8, "len"}, {8, 8, "hash"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      char *Buf = V.as<char>(0);
      uint64_t *Len = V.as<uint64_t>(1);
      uint64_t *Hash = V.as<uint64_t>(2);
      *Len = 48 + (I & 15);
      for (uint64_t J = 0; J != *Len; ++J)
        Buf[J] = static_cast<char>('a' + ((I + J) % 26));
      *Hash = 1469598103934665603ULL;
      for (uint64_t J = 0; J != *Len; ++J)
        *Hash = (*Hash ^ static_cast<uint8_t>(Buf[J])) * 1099511628211ULL;
      return *Hash;
    });
  }
  return Sum;
}

/// 401.bzip2-like: byte-frequency counting and run-length encoding over a
/// medium buffer.
uint64_t runBzip2(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{1024, 1, "block"}, {256 * 4, 4, "freq"}, {8, 8, "runs"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      uint8_t *Block = V.as<uint8_t>(0);
      uint32_t *Freq = V.as<uint32_t>(1);
      uint64_t *Runs = V.as<uint64_t>(2);
      std::memset(Freq, 0, 256 * 4);
      uint64_t X = I * 0x9e3779b97f4a7c15ULL + 1;
      for (int J = 0; J != 1024; ++J) {
        X ^= X << 13;
        X ^= X >> 7;
        Block[J] = static_cast<uint8_t>(X >> 3);
        ++Freq[Block[J]];
      }
      *Runs = 0;
      for (int J = 1; J != 1024; ++J)
        *Runs += Block[J] == Block[J - 1];
      return *Runs + Freq[0];
    });
  }
  return Sum;
}

/// 403.gcc-like: pointer-ish worklist over a small array graph.
uint64_t runGcc(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{256 * 4, 4, "succ"}, {256, 1, "mark"}, {8, 8, "head"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      uint32_t *Succ = V.as<uint32_t>(0);
      uint8_t *Mark = V.as<uint8_t>(1);
      uint64_t *Head = V.as<uint64_t>(2);
      for (int J = 0; J != 256; ++J) {
        Succ[J] = static_cast<uint32_t>((J * 29 + I) % 256);
        Mark[J] = 0;
      }
      *Head = I % 256;
      uint64_t Visited = 0;
      while (!Mark[*Head]) {
        Mark[*Head] = 1;
        ++Visited;
        *Head = Succ[*Head];
      }
      return Visited;
    });
  }
  return Sum;
}

/// 429.mcf-like: cost scan over integer arrays (memory-bound flavor).
uint64_t runMcf(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc({{384 * 8, 8, "cost"}, {8, 8, "best"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      uint64_t *Cost = V.as<uint64_t>(0);
      uint64_t *Best = V.as<uint64_t>(1);
      for (int J = 0; J != 384; ++J)
        Cost[J] = (J * 2654435761u) ^ I;
      *Best = UINT64_MAX;
      for (int J = 0; J != 384; ++J)
        if (Cost[J] < *Best)
          *Best = Cost[J];
      return *Best;
    });
  }
  return Sum;
}

/// 445.gobmk-like: the suite's largest frames (board-sized buffers); the
/// paper singles out its 85 KB frames as the worst performance case.
uint64_t runGobmk(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc({{1936, 1, "board"},
                                     {484 * 4, 4, "liberties"},
                                     {8, 8, "captures"},
                                     {8, 8, "turn"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      uint8_t *Board = V.as<uint8_t>(0);
      uint32_t *Libs = V.as<uint32_t>(1);
      uint64_t *Captures = V.as<uint64_t>(2);
      uint64_t *Turn = V.as<uint64_t>(3);
      *Turn = I;
      for (int J = 0; J != 1936; ++J)
        Board[J] = static_cast<uint8_t>((J + I) % 3);
      *Captures = 0;
      for (int J = 0; J != 484; ++J) {
        Libs[J] = Board[J * 4] + Board[J * 4 + 1];
        *Captures += Libs[J] == 0;
      }
      return *Captures + *Turn;
    });
  }
  return Sum;
}

/// 456.hmmer-like: dynamic-programming row updates.
uint64_t runHmmer(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{384 * 4, 4, "row"}, {384 * 4, 4, "prev"}, {8, 8, "score"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      int32_t *Row = V.as<int32_t>(0);
      int32_t *Prev = V.as<int32_t>(1);
      uint64_t *Score = V.as<uint64_t>(2);
      for (int J = 0; J != 384; ++J)
        Prev[J] = static_cast<int32_t>((J * 31 + I) & 1023) - 512;
      for (int J = 0; J != 384; ++J) {
        int32_t Up = J ? Prev[J - 1] : 0;
        Row[J] = (Prev[J] > Up ? Prev[J] : Up) + (J & 7) - 3;
      }
      *Score = static_cast<uint32_t>(Row[383]);
      return *Score;
    });
  }
  return Sum;
}

/// 458.sjeng-like: small recursive search (frame per ply).
uint64_t runSjengDepth(RandomSource *Rng, uint64_t Seed, int Depth);
uint64_t runSjeng(RandomSource *Rng, uint64_t Work) {
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I)
    Sum += runSjengDepth(Rng, I, 5);
  return Sum;
}
uint64_t runSjengDepth(RandomSource *Rng, uint64_t Seed, int Depth) {
  static const FrameDescriptor Desc(
      {{32, 1, "moves"}, {8, 8, "best"}, {4, 4, "count"}});
  return invokeFrame(Desc, Rng, [&](const FrameView &V) {
    uint8_t *Moves = V.as<uint8_t>(0);
    uint64_t *Best = V.as<uint64_t>(1);
    uint32_t *Count = V.as<uint32_t>(2);
    *Count = 2 + (Seed & 1);
    for (uint32_t J = 0; J != *Count; ++J)
      Moves[J] = static_cast<uint8_t>((Seed >> J) & 0xF);
    // Static evaluation: mix the position hash for a while (real engines
    // spend most time in evaluation, not move generation).
    uint64_t Eval = Seed;
    for (int J = 0; J != 96; ++J) {
      Eval ^= Eval << 13;
      Eval ^= Eval >> 7;
      Eval += Moves[static_cast<uint32_t>(J) % *Count];
    }
    *Best = Eval & 0xFF;
    if (Depth > 0)
      for (uint32_t J = 0; J != *Count; ++J) {
        uint64_t Child =
            runSjengDepth(Rng, Seed * 6364136223846793005ULL + Moves[J],
                          Depth - 1);
        if (Child > *Best)
          *Best = Child;
      }
    return *Best;
  });
}

/// 462.libquantum-like: phase flips over a register array.
uint64_t runLibquantum(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc({{256 * 8, 8, "amp"}, {8, 8, "mask"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      uint64_t *Amp = V.as<uint64_t>(0);
      uint64_t *Mask = V.as<uint64_t>(1);
      *Mask = 1ULL << (I % 63);
      for (int J = 0; J != 256; ++J)
        Amp[J] = (J * 0x9e3779b97f4a7c15ULL) ^ I;
      uint64_t Parity = 0;
      for (int J = 0; J != 256; ++J)
        Parity ^= Amp[J] & *Mask ? Amp[J] : ~Amp[J];
      return Parity;
    });
  }
  return Sum;
}

/// 464.h264ref-like: sum-of-absolute-differences over blocks.
uint64_t runH264(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{256, 1, "cur"}, {256, 1, "ref"}, {8, 8, "sad"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      uint8_t *Cur = V.as<uint8_t>(0);
      uint8_t *Ref = V.as<uint8_t>(1);
      uint64_t *Sad = V.as<uint64_t>(2);
      for (int J = 0; J != 256; ++J) {
        Cur[J] = static_cast<uint8_t>(J + I);
        Ref[J] = static_cast<uint8_t>(J + I / 2);
      }
      *Sad = 0;
      for (int J = 0; J != 256; ++J)
        *Sad += Cur[J] > Ref[J] ? Cur[J] - Ref[J] : Ref[J] - Cur[J];
      return *Sad;
    });
  }
  return Sum;
}

/// 470.lbm-like: floating-point stencil over a line of cells.
uint64_t runLbm(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{128 * 8, 8, "cells"}, {8, 8, "relax"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      double *Cells = V.as<double>(0);
      double *Relax = V.as<double>(1);
      *Relax = 1.85;
      for (int J = 0; J != 128; ++J)
        Cells[J] = 1.0 + (J + I % 7) * 0.01;
      for (int J = 1; J != 127; ++J)
        Cells[J] += *Relax * (0.5 * (Cells[J - 1] + Cells[J + 1]) - Cells[J]);
      return static_cast<uint64_t>(Cells[64] * 1000.0);
    });
  }
  return Sum;
}

/// 433.milc-like: complex multiply-accumulate.
uint64_t runMilc(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{160 * 8, 8, "re"}, {160 * 8, 8, "im"}, {8, 8, "accRe"}, {8, 8, "accIm"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      double *Re = V.as<double>(0);
      double *Im = V.as<double>(1);
      double *AccRe = V.as<double>(2);
      double *AccIm = V.as<double>(3);
      for (int J = 0; J != 160; ++J) {
        Re[J] = 0.25 + J * 0.001 + (I % 3) * 0.1;
        Im[J] = 0.50 - J * 0.002;
      }
      *AccRe = 0.0;
      *AccIm = 0.0;
      for (int J = 0; J + 1 < 160; J += 2) {
        *AccRe += Re[J] * Re[J + 1] - Im[J] * Im[J + 1];
        *AccIm += Re[J] * Im[J + 1] + Im[J] * Re[J + 1];
      }
      return static_cast<uint64_t>((*AccRe + *AccIm) * 100.0);
    });
  }
  return Sum;
}

/// 482.sphinx3-like: Gaussian log-likelihood evaluation.
uint64_t runSphinx(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{128 * 8, 8, "feat"}, {128 * 8, 8, "mean"}, {8, 8, "logp"}});
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      double *Feat = V.as<double>(0);
      double *Mean = V.as<double>(1);
      double *LogP = V.as<double>(2);
      for (int J = 0; J != 128; ++J) {
        Feat[J] = J * 0.1 + (I % 11) * 0.01;
        Mean[J] = J * 0.1;
      }
      *LogP = 0.0;
      for (int J = 0; J != 128; ++J) {
        double D = Feat[J] - Mean[J];
        *LogP -= D * D * 0.5;
      }
      return static_cast<uint64_t>(-*LogP * 1e6);
    });
  }
  return Sum;
}

/// proftpd-like (I/O-bound): bulk transfer dominates; the hardened request
/// parser runs once per large buffer move, so instrumentation is rare
/// relative to work — the paper measured at most ~6% here.
uint64_t runProftpdLike(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{128, 1, "cmdline"}, {8, 8, "verb"}, {8, 8, "arg"}});
  static uint8_t TransferBuf[1 << 15];
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    // "Network I/O": a large copy standing in for send/recv time.
    std::memset(TransferBuf, static_cast<int>(I), sizeof(TransferBuf));
    Sum += TransferBuf[I % sizeof(TransferBuf)];
    // One hardened request-parse call per transfer.
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      char *Cmd = V.as<char>(0);
      uint64_t *Verb = V.as<uint64_t>(1);
      uint64_t *Arg = V.as<uint64_t>(2);
      std::snprintf(Cmd, 128, "RETR file%llu.dat",
                    static_cast<unsigned long long>(I));
      *Verb = static_cast<uint8_t>(Cmd[0]);
      *Arg = std::strlen(Cmd);
      return *Verb + *Arg;
    });
  }
  return Sum;
}

/// wireshark-like (I/O-bound): per-packet dissection over captured bytes.
uint64_t runWiresharkLike(RandomSource *Rng, uint64_t Work) {
  static const FrameDescriptor Desc(
      {{512, 1, "pkt"}, {8, 8, "proto"}, {8, 8, "len"}});
  static uint8_t Capture[1 << 15];
  uint64_t Sum = 0;
  for (uint64_t I = 0; I != Work; ++I) {
    std::memset(Capture, static_cast<int>(I * 7), sizeof(Capture));
    Sum += Capture[(I * 131) % sizeof(Capture)];
    Sum += invokeFrame(Desc, Rng, [I](const FrameView &V) {
      uint8_t *Pkt = V.as<uint8_t>(0);
      uint64_t *Proto = V.as<uint64_t>(1);
      uint64_t *Len = V.as<uint64_t>(2);
      *Len = 64 + (I % 448);
      for (uint64_t J = 0; J != *Len; ++J)
        Pkt[J] = static_cast<uint8_t>(J ^ I);
      *Proto = Pkt[9]; // "IP protocol" byte
      uint64_t Csum = 0;
      for (uint64_t J = 0; J + 1 < *Len; J += 2)
        Csum += Pkt[J] | (uint64_t(Pkt[J + 1]) << 8);
      return Csum + *Proto;
    });
  }
  return Sum;
}

const Workload Kernels[] = {
    {"400.perlbench-like", false, runPerlbench},
    {"401.bzip2-like", false, runBzip2},
    {"403.gcc-like", false, runGcc},
    {"429.mcf-like", false, runMcf},
    {"433.milc-like", false, runMilc},
    {"445.gobmk-like", false, runGobmk},
    {"456.hmmer-like", false, runHmmer},
    {"458.sjeng-like", false, runSjeng},
    {"462.libquantum-like", false, runLibquantum},
    {"464.h264ref-like", false, runH264},
    {"470.lbm-like", false, runLbm},
    {"482.sphinx3-like", false, runSphinx},
    {"proftpd-like", true, runProftpdLike},
    {"wireshark-like", true, runWiresharkLike},
};

} // namespace

std::span<const Workload> smokestack::allWorkloads() { return Kernels; }
