//===- workloads/Workloads.h - SPEC-like benchmark kernels -----*- C++ -*-===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native benchmark kernels standing in for the paper's SPEC 2006 and
/// I/O-bound evaluation programs (substitution documented in DESIGN.md).
/// Every kernel's hot function allocates its locals through the
/// smokestack::PermutedFrame runtime when a RandomSource is supplied —
/// paying exactly the instrumented prologue/epilogue cost (one RNG draw,
/// one P-BOX row lookup, slice pointers, identifier tag + check) — and
/// through the same accessor with fixed declaration-order offsets when not,
/// which is the uninstrumented baseline. The measured delta is the paper's
/// Figure 3 quantity.
///
/// Kernels are named after the SPEC program whose call/frame profile they
/// imitate (call frequency, frame size, arithmetic flavor); they are not
/// the SPEC codes.
///
//===----------------------------------------------------------------------===//

#ifndef SMOKESTACK_WORKLOADS_WORKLOADS_H
#define SMOKESTACK_WORKLOADS_WORKLOADS_H

#include "core/FrameRuntime.h"
#include "rng/RandomSource.h"

#include <cassert>
#include <span>

namespace smokestack {

/// Largest frame any kernel uses (gobmk-like board frames are the biggest).
inline constexpr size_t MaxKernelFrame = 4096;

/// Uniform view over a function's locals, independent of whether the frame
/// was randomized this invocation.
struct FrameView {
  void *Slots[8] = {};

  template <typename T> T *as(unsigned I) const {
    return static_cast<T *>(Slots[I]);
  }
};

/// Invokes \p Body with a frame laid out per \p Desc. With \p Rng the call
/// performs the full Smokestack prologue and epilogue; without it the
/// locals sit at fixed declaration-order offsets (baseline). Both paths go
/// through FrameView so the only difference measured is the defense.
template <typename Fn>
inline uint64_t invokeFrame(const FrameDescriptor &Desc, RandomSource *Rng,
                            Fn &&Body) {
  assert(Desc.frameSize() <= MaxKernelFrame && "enlarge MaxKernelFrame");
  alignas(16) char Slab[MaxKernelFrame];
  FrameView View;
  if (Rng) {
    PermutedFrame Frame(Desc, *Rng, Slab);
    for (unsigned I = 0, E = Desc.numSlots(); I != E; ++I)
      View.Slots[I] = Frame.slot(I);
    uint64_t Result = Body(View);
    // Epilogue check: a detected violation poisons the checksum (never
    // happens in benign benchmarking, but the check must be paid for).
    return Frame.checkIdentifier() ? Result : Result ^ 0xDEAD;
  }
  for (unsigned I = 0, E = Desc.numSlots(); I != E; ++I)
    View.Slots[I] = Slab + Desc.baselineOffset(I);
  return Body(View);
}

/// One benchmark kernel.
struct Workload {
  /// Display name ("400.perlbench-like", "proftpd-like", ...).
  const char *Name;
  /// True for the I/O-bound server models (rare hardened calls relative to
  /// bulk data movement).
  bool IOBound;
  /// Runs the kernel for \p Work units with optional frame randomization;
  /// returns a checksum the caller must consume.
  uint64_t (*Run)(RandomSource *Rng, uint64_t Work);
};

/// All kernels: twelve SPEC-2006-like CPU-bound programs plus two I/O-bound
/// server models, in the order the paper's Figure 3 lists them.
std::span<const Workload> allWorkloads();

} // namespace smokestack

#endif // SMOKESTACK_WORKLOADS_WORKLOADS_H
