//===- tests/apps/PatchedAppsTest.cpp - Fixed-version app behavior -------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sanity checks that the app models are vulnerable for the *modeled
/// reason*: feeding the exact exploit inputs to runs where the dangerous
/// primitive cannot fire (bounded sizes, sane lengths) must be harmless.
/// This guards the models against accidentally being exploitable through
/// some unrelated artifact of the simulation.
///
//===----------------------------------------------------------------------===//

#include "apps/Librelp.h"
#include "apps/Proftpd.h"
#include "apps/Wireshark.h"

#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace smokestack;

TEST(PatchedAppsTest, LibrelpCursorStaysBoundedWithShortSans) {
  // SANs that keep iAllNames below 1024 can never reach the caller: the
  // snprintf stays clipped inside allNames.
  Module M("librelp");
  buildLibrelpModule(M);
  Interpreter VM(M);
  for (int I = 0; I != 6; ++I)
    VM.pushInputString("a-short-name.example");
  VM.pushInput({});
  ExecResult R = VM.run("relpTcpLstnInit");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0u) << "gadgets must stay dormant";
}

TEST(PatchedAppsTest, LibrelpBoundaryWithoutPayloadIsHarmless) {
  // Driving the cursor past the boundary but sending only filler (no
  // precise gadget bytes) corrupts pad space, not the gadget operands on
  // the baseline layout.
  Module M("librelp");
  buildLibrelpModule(M);
  Interpreter VM(M);
  for (int I = 0; I != 12; ++I)
    VM.pushInput(std::vector<uint8_t>(100, 'Z'));
  VM.pushInput({});
  ExecResult R = VM.run("relpTcpLstnInit");
  // The blind spray may or may not derail the dispatcher, but it must not
  // exfiltrate the secret.
  if (R.ok())
    EXPECT_NE(R.ReturnValue, LibrelpSecret);
}

TEST(PatchedAppsTest, WiresharkInFrameDataIsHarmless) {
  // A frame that fits in pd never reaches col/cinfo.
  Module M("wireshark");
  buildWiresharkModule(M);
  Interpreter VM(M);
  VM.pushInput(std::vector<uint8_t>(512, 0x7F));
  ExecResult R = VM.run("gtk_tree_view_column_cell_set_cell_data");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0u);
}

TEST(PatchedAppsTest, ProftpdShortCommandsAreHarmless) {
  // Commands shorter than the buffer keep sstrncpy's bound positive.
  Module M("proftpd");
  buildProftpdModule(M);
  Interpreter VM(M);
  for (int I = 0; I != 10; ++I) {
    std::string Cmd = "RETR file" + std::to_string(I);
    std::vector<uint8_t> Record(Cmd.begin(), Cmd.end());
    Record.push_back(0);
    VM.pushInput(Record);
  }
  ExecResult R = VM.run("main_loop");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0u) << "key must not leak";
}

TEST(PatchedAppsTest, ProftpdExactBoundaryCommand) {
  // A 127-byte command gives space == 1: sstrncpy writes only the NUL.
  Module M("proftpd");
  buildProftpdModule(M);
  Interpreter VM(M);
  std::vector<uint8_t> Record(127, 'A');
  Record.push_back(0);
  VM.pushInput(Record);
  ExecResult R = VM.run("main_loop");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0u);
}
