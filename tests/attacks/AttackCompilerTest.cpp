//===- tests/attacks/AttackCompilerTest.cpp - Attack compiler tests ------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attack compiler's contract: the seeded spec generator is pure,
/// stratified, and collision-free at corpus scale; compiled attacks land
/// against the undefended build on the first attempt and die under
/// Smokestack; and every corpus cell replays bit-identically from its
/// (RootSeed, SpecIndex, Defense) coordinates.
///
//===----------------------------------------------------------------------===//

#include "attacks/compiler/Corpus.h"
#include "attacks/compiler/SpecGen.h"

#include <gtest/gtest.h>
#include <set>

using namespace smokestack;

namespace {

const DefenseTally &tallyFor(const AttackCorpusResult &Result,
                             DefenseKind Kind) {
  for (const DefenseTally &T : Result.Tallies)
    if (T.Defense == Kind)
      return T;
  ADD_FAILURE() << "no tally for " << defenseKindName(Kind);
  static DefenseTally Empty;
  return Empty;
}

} // namespace

TEST(AttackCompilerTest, SpecGenerationIsPurePerIndex) {
  // Re-generating any index must not depend on which indices were
  // generated before it — that is what makes cells replayable standalone.
  std::vector<AttackSpec> Batch = generateSpecs(7, 32);
  for (uint32_t I = 0; I != 32; ++I) {
    AttackSpec Alone = generateSpec(7, I);
    EXPECT_EQ(Alone.fingerprint(), Batch[I].fingerprint())
        << "index " << I << " depends on enumeration order";
  }
  // And regeneration is bit-stable.
  EXPECT_EQ(generateSpec(7, 11).fingerprint(),
            generateSpec(7, 11).fingerprint());
}

TEST(AttackCompilerTest, SpecsDistinctAtCorpusScale) {
  // The committed corpus enumerates 512 specs; all of them must be
  // distinct, with an exact even split of corruption families (the
  // stratification is index arithmetic, not coin flips).
  constexpr unsigned N = 512;
  std::set<uint64_t> Fingerprints;
  unsigned Direct = 0, Indirect = 0;
  for (uint32_t I = 0; I != N; ++I) {
    AttackSpec Spec = generateSpec(7, I);
    Fingerprints.insert(Spec.fingerprint());
    (Spec.Mode == CorruptionMode::Direct ? Direct : Indirect)++;
  }
  EXPECT_EQ(Fingerprints.size(), N);
  EXPECT_EQ(Direct, N / 2);
  EXPECT_EQ(Indirect, N / 2);
  EXPECT_GE(Direct, 200u) << "ISSUE floor: >=200 specs per family";
}

TEST(AttackCompilerTest, StratificationCoversShapesAndRegions) {
  bool Counted = false, Sentinel = false;
  bool Stack = false, Global = false, Heap = false;
  for (uint32_t I = 0; I != 12; ++I) {
    AttackSpec Spec = generateSpec(7, I);
    if (Spec.Mode == CorruptionMode::Direct) {
      EXPECT_EQ(Spec.Region, BufferRegion::Stack)
          << "direct sweeps must cross stack frames";
      Counted |= Spec.Shape == DispatcherShape::CountedLoop;
      Sentinel |= Spec.Shape == DispatcherShape::SentinelLoop;
    } else {
      Stack |= Spec.Region == BufferRegion::Stack;
      Global |= Spec.Region == BufferRegion::Global;
      Heap |= Spec.Region == BufferRegion::Heap;
    }
  }
  EXPECT_TRUE(Counted && Sentinel) << "both dispatcher shapes in 12 specs";
  EXPECT_TRUE(Stack && Global && Heap) << "all three regions in 12 specs";
}

TEST(AttackCompilerTest, RootSeedChangesTheCorpus) {
  EXPECT_NE(generateSpec(7, 0).fingerprint(),
            generateSpec(8, 0).fingerprint());
}

TEST(AttackCompilerTest, DopChainSemantics) {
  AttackSpec Spec;
  Spec.InitialAcc = 100;
  Spec.Chain = {{GadgetOp::Add, 7}, {GadgetOp::Sub, 3}, {GadgetOp::Xor, 9}};
  EXPECT_EQ(Spec.dopIntermediate(0), 100u);
  EXPECT_EQ(Spec.dopIntermediate(1), 107u);
  EXPECT_EQ(Spec.dopIntermediate(2), 104u);
  EXPECT_EQ(Spec.dopResult(), 104u ^ 9u);
  EXPECT_EQ(Spec.dopIntermediate(99), Spec.dopResult())
      << "past-the-end intermediates saturate at the final result";
}

TEST(AttackCompilerTest, UndisclosedLayoutDoesNotLower) {
  // No probe, no gadgets: the compiler must refuse, not guess addresses.
  LayoutOracle Blind;
  EXPECT_FALSE(lowerAttack(generateSpec(7, 0), Blind).has_value());
  EXPECT_FALSE(lowerAttack(generateSpec(7, 1), Blind).has_value());
}

TEST(AttackCompilerTest, DirectAttackLandsUndefendedFirstTry) {
  AttackSpec Spec = generateSpec(7, 0); // even index: Direct
  ASSERT_EQ(Spec.Mode, CorruptionMode::Direct);
  AttackReport R = runCompiledAttack(Spec, DefenseKind::None, /*Budget=*/2);
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
  EXPECT_EQ(R.AttemptsUsed, 1u)
      << "against a fixed layout the probe fully de-randomizes";
}

TEST(AttackCompilerTest, IndirectAttackLandsUndefendedFirstTry) {
  AttackSpec Spec = generateSpec(7, 1); // odd index: PointerIndirect
  ASSERT_EQ(Spec.Mode, CorruptionMode::PointerIndirect);
  AttackReport R = runCompiledAttack(Spec, DefenseKind::None, /*Budget=*/2);
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
  EXPECT_EQ(R.AttemptsUsed, 1u);
}

TEST(AttackCompilerTest, SmokestackDefeatsBothFamilies) {
  for (uint32_t Index : {0u, 1u}) {
    AttackReport R = runCompiledAttack(generateSpec(7, Index),
                                       DefenseKind::Smokestack, /*Budget=*/2);
    EXPECT_NE(R.Outcome, AttackOutcome::Succeeded)
        << "spec " << Index << ": " << R.Detail;
  }
}

TEST(AttackCompilerTest, CorpusCellsReplayStandalone) {
  AttackCorpusOptions Options;
  Options.RootSeed = 7;
  Options.SpecCount = 6;
  Options.Budget = 1;
  AttackCorpusResult Result = runAttackCorpus(Options);
  ASSERT_EQ(Result.Cells.size(), 6 * allDefenseKinds().size());
  for (const CorpusCell &Cell : Result.Cells) {
    CorpusCell Replayed = runCorpusCell(Options.RootSeed, Cell.SpecIndex,
                                        Cell.Defense, Options.Budget);
    EXPECT_EQ(Replayed.Outcome, Cell.Outcome)
        << "spec " << Cell.SpecIndex << " vs "
        << defenseKindName(Cell.Defense);
    EXPECT_EQ(Replayed.Trap, Cell.Trap);
    EXPECT_EQ(Replayed.AttemptsUsed, Cell.AttemptsUsed);
  }
}

TEST(AttackCompilerTest, CorpusDigestIsDeterministicAndSeedSensitive) {
  AttackCorpusOptions Options;
  Options.RootSeed = 7;
  Options.SpecCount = 4;
  Options.Budget = 1;
  AttackCorpusResult A = runAttackCorpus(Options);
  AttackCorpusResult B = runAttackCorpus(Options);
  EXPECT_EQ(A.Digest, B.Digest) << "rerun must be bit-identical";
  EXPECT_EQ(A.DistinctSpecs, 4u);
  Options.RootSeed = 8;
  EXPECT_NE(runAttackCorpus(Options).Digest, A.Digest);
}

TEST(AttackCompilerTest, SmallCorpusDefeatDifferential) {
  // The headline differential at toy scale: the undefended build loses
  // every attack, Smokestack survives every one. The full defeat-rate
  // policy (>=0.99, strictly above every baseline) is gated on the
  // committed 512-spec corpus by tools/check_bench_regression.py.
  AttackCorpusOptions Options;
  Options.RootSeed = 7;
  Options.SpecCount = 8;
  Options.Budget = 1;
  AttackCorpusResult Result = runAttackCorpus(Options);
  const DefenseTally &Undefended = tallyFor(Result, DefenseKind::None);
  EXPECT_EQ(Undefended.Attacks, 8u);
  EXPECT_EQ(Undefended.Succeeded, 8u) << "compiled attacks must land";
  EXPECT_EQ(Undefended.defeatRate(), 0.0);
  const DefenseTally &Smokestack = tallyFor(Result, DefenseKind::Smokestack);
  EXPECT_EQ(Smokestack.Succeeded, 0u);
  EXPECT_EQ(Smokestack.defeatRate(), 1.0);
}
