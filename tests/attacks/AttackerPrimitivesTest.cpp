//===- tests/attacks/AttackerPrimitivesTest.cpp - Primitive edge cases ---===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary behavior of the attacker's building blocks: Payload byte-poking
/// at zero lengths and overlapping ranges (the lowering stacks many pokes
/// into one record, so last-writer-wins and auto-extension are load-bearing),
/// and predictPseudoDraw's limits against sources whose state is not in
/// attacker-readable memory.
///
//===----------------------------------------------------------------------===//

#include "attacks/Attacker.h"

#include "rng/AesCtr.h"
#include "rng/Pseudo.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace smokestack;

TEST(AttackerPrimitivesTest, ZeroLengthPayloadStartsEmpty) {
  Payload P(0);
  EXPECT_EQ(P.size(), 0u);
  EXPECT_TRUE(P.bytes().empty());
  // A poke into an empty payload grows exactly the swept range.
  P.pokeInt(0, 0x11, /*Width=*/1);
  EXPECT_EQ(P.size(), 1u);
  EXPECT_EQ(P.bytes()[0], 0x11);
}

TEST(AttackerPrimitivesTest, ZeroSizePokeStillExtendsTheSweep) {
  // A zero-byte poke carries no data but still declares how far the
  // record overflows: the payload grows to the offset, filled with 'A'.
  Payload P(2, 0xCC);
  uint8_t Dummy = 0;
  P.pokeBytes(6, &Dummy, 0);
  EXPECT_EQ(P.size(), 6u);
  EXPECT_EQ(P.bytes()[2], 'A') << "extension uses the overflow filler";
  EXPECT_EQ(P.bytes()[5], 'A');
  // Inside the existing range it is a no-op.
  P.pokeBytes(1, &Dummy, 0);
  EXPECT_EQ(P.size(), 6u);
  EXPECT_EQ(P.bytes()[1], 0xCC);
}

TEST(AttackerPrimitivesTest, OverlappingPokesLastWriterWins) {
  Payload P(16);
  P.pokeInt(0, 0x1111111111111111ULL);
  P.pokeInt(4, 0x2222222222222222ULL); // overlaps bytes 4..7
  EXPECT_EQ(P.bytes()[3], 0x11);
  EXPECT_EQ(P.bytes()[4], 0x22) << "second poke overwrites the overlap";
  EXPECT_EQ(P.bytes()[11], 0x22);
  P.pokeInt(4, 0x33, /*Width=*/1); // narrow re-poke inside the wide one
  EXPECT_EQ(P.bytes()[4], 0x33);
  EXPECT_EQ(P.bytes()[5], 0x22) << "narrow poke leaves neighbors intact";
  EXPECT_EQ(P.size(), 16u) << "in-range pokes never shrink or grow";
}

TEST(AttackerPrimitivesTest, ExtensionFillerIsOverflowFiller) {
  // Auto-extension must pad with the sweep filler 'A', not the payload's
  // construction filler: the planted bytes between old end and new target
  // are part of the linear overflow, exactly what the victim's sweep
  // writes anyway.
  Payload P(2, 0xEE);
  P.pokeInt(8, 0xAB, /*Width=*/1);
  EXPECT_EQ(P.size(), 9u);
  EXPECT_EQ(P.bytes()[0], 0xEE);
  EXPECT_EQ(P.bytes()[2], 'A');
  EXPECT_EQ(P.bytes()[7], 'A');
  EXPECT_EQ(P.bytes()[8], 0xAB);
}

TEST(AttackerPrimitivesTest, PredictionTracksOnlyMatchingPseudoState) {
  // Control: with the victim's actual state, prediction is exact.
  DeterministicEntropySource Entropy(5);
  PseudoRandomSource Victim(Entropy);
  uint8_t Stolen[16];
  std::memcpy(Stolen, Victim.disclosableState().data(), 16);
  EXPECT_EQ(predictPseudoDraw(Stolen, 1), Victim.next());

  // A stale snapshot (victim re-seeded after the disclosure) mispredicts:
  // state compromise does not survive a reseed.
  DeterministicEntropySource Fresh(6);
  PseudoRandomSource Reseeded(Fresh);
  EXPECT_NE(predictPseudoDraw(Stolen, 1), Reseeded.next());
}

TEST(AttackerPrimitivesTest, AesCtrExposesNoDisclosableState) {
  // The AES-CTR scheme keeps key schedule and counter out of data memory
  // (registers, per the threat model), so the disclosure primitive that
  // powers predictPseudoDraw has nothing to read — this emptiness is the
  // security argument for `aes10` and it must never regress.
  DeterministicEntropySource Entropy(5);
  AesCtrRandomSource Src(Entropy, 10);
  (void)Src.next();
  EXPECT_TRUE(Src.disclosableState().empty());
  EXPECT_TRUE(Src.mutableDisclosableState().empty());
  EXPECT_TRUE(Src.bufferedState().empty())
      << "unbuffered draws leave no undrawn words in memory";
}

TEST(AttackerPrimitivesTest, StateCorruptionStillTracksPseudo) {
  // The flip side of disclosure: the attacker *writes* the pseudo state
  // and then predicts the forced stream — pseudo is fully hijackable.
  DeterministicEntropySource Entropy(5);
  PseudoRandomSource Victim(Entropy);
  uint8_t Forced[16];
  for (int I = 0; I != 16; ++I)
    Forced[I] = static_cast<uint8_t>(0xB0 + I);
  std::memcpy(Victim.mutableDisclosableState().data(), Forced, 16);
  EXPECT_EQ(predictPseudoDraw(Forced, 1), Victim.next());
  EXPECT_EQ(predictPseudoDraw(Forced, 2), Victim.next());
}
