//===- tests/attacks/AttackerTest.cpp - Attacker toolbox unit tests ------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "attacks/Attacker.h"

#include "ir/IRBuilder.h"
#include "rng/Pseudo.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace smokestack;

namespace {

/// Two-function module exercising the oracle across frames.
void buildPair(Module &M) {
  IRBuilder B(M);
  Function *Inner = M.createFunction("inner", B.voidTy(), {});
  {
    IRBuilder IB(M);
    IB.setInsertPoint(Inner->createBlock("entry"));
    AllocaInst *Buf = IB.alloca_(IB.getContext().getArrayTy(IB.i8(), 32),
                                 "ibuf");
    IB.store(IB.constI8(1), Buf);
    IB.ret();
  }
  Function *Outer = M.createFunction("outer", B.voidTy(), {});
  B.setInsertPoint(Outer->createBlock("entry"));
  AllocaInst *X = B.alloca_(B.i64(), "x");
  B.store(B.constI64(0), X);
  B.call(Inner, {});
  B.call(Inner, {});
  B.ret();
}

} // namespace

TEST(AttackerTest, OracleRecordsPerFunctionPlacements) {
  Module M("m");
  buildPair(M);
  LayoutOracle Oracle;
  Interpreter VM(M);
  VM.setLayoutObserver(&Oracle);
  ASSERT_TRUE(VM.run("outer").ok());
  EXPECT_TRUE(Oracle.knows("outer", "x"));
  EXPECT_TRUE(Oracle.knows("inner", "ibuf"));
  EXPECT_FALSE(Oracle.knows("outer", "ibuf"));
  EXPECT_FALSE(Oracle.knows("inner", "missing"));
  // The caller's local sits above the callee's buffer.
  EXPECT_GT(Oracle.addressOf("outer", "x"),
            Oracle.addressOf("inner", "ibuf"));
}

TEST(AttackerTest, OracleDistanceWithinOneFunction) {
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *High = B.alloca_(B.i64(), "high");
  AllocaInst *Low = B.alloca_(B.i64(), "low");
  B.store(B.constI64(0), High);
  B.store(B.constI64(0), Low);
  B.ret();
  LayoutOracle Oracle;
  Interpreter VM(M);
  VM.setLayoutObserver(&Oracle);
  VM.run("f");
  EXPECT_EQ(Oracle.distance("f", "low", "high"), 8);
  EXPECT_EQ(Oracle.distance("f", "high", "low"), -8);
}

TEST(AttackerTest, KeepFirstRetainsFirstInvocation) {
  // inner runs twice at the same depth, so both invocations see the same
  // addresses — force different ones by calling at different depths.
  Module M("m");
  IRBuilder B(M);
  Function *Leaf = M.createFunction("leaf", B.voidTy(), {});
  {
    IRBuilder LB(M);
    LB.setInsertPoint(Leaf->createBlock("entry"));
    AllocaInst *Buf = LB.alloca_(LB.i64(), "lv");
    LB.store(LB.constI64(0), Buf);
    LB.ret();
  }
  Function *Wrap = M.createFunction("wrap", B.voidTy(), {});
  {
    IRBuilder WB(M);
    WB.setInsertPoint(Wrap->createBlock("entry"));
    AllocaInst *Pad = WB.alloca_(WB.getContext().getArrayTy(WB.i8(), 64),
                                 "pad");
    WB.store(WB.constI8(0), Pad);
    WB.call(Leaf, {}); // deeper: lower address
    WB.ret();
  }
  Function *Top = M.createFunction("top", B.voidTy(), {});
  B.setInsertPoint(Top->createBlock("entry"));
  B.call(Leaf, {}); // shallow: higher address
  B.call(Wrap, {});
  B.ret();

  LayoutOracle First(/*KeepFirst=*/true), Last(/*KeepFirst=*/false);
  {
    Interpreter VM(M);
    VM.setLayoutObserver(&First);
    VM.run("top");
  }
  {
    Interpreter VM(M);
    VM.setLayoutObserver(&Last);
    VM.run("top");
  }
  EXPECT_GT(First.addressOf("leaf", "lv"), Last.addressOf("leaf", "lv"))
      << "first invocation was shallower (higher), last was deeper";
}

TEST(AttackerTest, PayloadPokesLittleEndian) {
  Payload P(4);
  P.pokeInt(0, 0x0102030405060708ULL);
  EXPECT_EQ(P.size(), 8u) << "poke extends past the initial length";
  EXPECT_EQ(P.bytes()[0], 0x08);
  EXPECT_EQ(P.bytes()[7], 0x01);
}

TEST(AttackerTest, PayloadFillerAndPartialWidths) {
  Payload P(16, 0xCC);
  P.pokeInt(2, 0xBEEF, /*Width=*/2);
  EXPECT_EQ(P.bytes()[0], 0xCC);
  EXPECT_EQ(P.bytes()[2], 0xEF);
  EXPECT_EQ(P.bytes()[3], 0xBE);
  EXPECT_EQ(P.bytes()[4], 0xCC);
  const char Raw[] = {1, 2, 3};
  P.pokeBytes(14, Raw, sizeof(Raw));
  EXPECT_EQ(P.size(), 17u);
  EXPECT_EQ(P.bytes()[16], 3);
}

TEST(AttackerTest, PredictPseudoDrawTracksVictim) {
  DeterministicEntropySource Entropy(5);
  PseudoRandomSource Victim(Entropy);
  uint8_t Stolen[16];
  std::memcpy(Stolen, Victim.disclosableState().data(), 16);
  // Predict the 1st, 3rd, and 10th future draws without touching the
  // victim, then verify against it.
  uint64_t P1 = predictPseudoDraw(Stolen, 1);
  uint64_t P3 = predictPseudoDraw(Stolen, 3);
  uint64_t P10 = predictPseudoDraw(Stolen, 10);
  std::vector<uint64_t> Actual;
  for (int I = 0; I != 10; ++I)
    Actual.push_back(Victim.next());
  EXPECT_EQ(P1, Actual[0]);
  EXPECT_EQ(P3, Actual[2]);
  EXPECT_EQ(P10, Actual[9]);
}

TEST(AttackerTest, OutcomeNames) {
  EXPECT_STREQ(attackOutcomeName(AttackOutcome::Succeeded), "SUCCEEDED");
  EXPECT_STREQ(attackOutcomeName(AttackOutcome::StoppedByTrap),
               "stopped-by-trap");
  EXPECT_STREQ(attackOutcomeName(AttackOutcome::MissedTarget),
               "missed-target");
}
