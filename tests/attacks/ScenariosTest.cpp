//===- tests/attacks/ScenariosTest.cpp - Synthetic DOP scenario tests ----===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section V-C penetration matrix as assertions: prior stack
/// defenses fall to probe-guided DOP attacks, Smokestack stops them, and a
/// memory-resident PRNG voids Smokestack.
///
//===----------------------------------------------------------------------===//

#include "attacks/Scenarios.h"

#include "rng/AesCtr.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

struct RngBundle {
  DeterministicEntropySource Entropy;
  AesCtrRandomSource Source;
  explicit RngBundle(uint64_t Seed) : Entropy(Seed), Source(Entropy, 10) {}
};

ScenarioConfig configFor(DefenseKind Kind, RandomSource *Rng,
                         uint64_t BuildSeed = 1) {
  ScenarioConfig Config;
  Config.Defense = Kind;
  Config.BuildSeed = BuildSeed;
  Config.Budget = 8;
  Config.Rng = Rng;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Direct (linear, stack-to-stack) attack
//===----------------------------------------------------------------------===//

TEST(DirectDopTest, SucceedsAgainstUnprotectedBaseline) {
  AttackReport R = runDirectDopAttack(configFor(DefenseKind::None, nullptr));
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
  EXPECT_EQ(R.AttemptsUsed, 1u) << "deterministic layout: first try";
}

TEST(DirectDopTest, DisclosureBypassesStackBaseRandomization) {
  AttackReport R = runDirectDopAttack(
      configFor(DefenseKind::StackBaseRandomization, nullptr));
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
}

TEST(DirectDopTest, RelativeDistancesDefeatEntryPadding) {
  // Forrest-style padding shifts frames wholesale; the DOP payload only
  // needs relative distances, which the probe discloses (paper Section
  // II-B).
  AttackReport R =
      runDirectDopAttack(configFor(DefenseKind::EntryPadding, nullptr));
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
}

TEST(DirectDopTest, ProbeDerandomizesStaticPermutation) {
  // One-shot compile-time shuffles fall to a single disclosure (paper
  // Section II-C).
  AttackReport R = runDirectDopAttack(
      configFor(DefenseKind::StaticPermutation, nullptr));
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
}

TEST(DirectDopTest, LinearSweepTripsStackCanary) {
  // The classic linear cross-frame sweep cannot help crossing the guard
  // word; SSP catches this variant (the librelp test shows the non-linear
  // bypass).
  AttackReport R =
      runDirectDopAttack(configFor(DefenseKind::StackCanary, nullptr));
  EXPECT_EQ(R.Outcome, AttackOutcome::StoppedByTrap) << R.Detail;
  EXPECT_EQ(R.Trap, TrapKind::CanaryViolation);
}

TEST(DirectDopTest, SmokestackStopsTheAttack) {
  RngBundle Rng(101);
  AttackReport R =
      runDirectDopAttack(configFor(DefenseKind::Smokestack, &Rng.Source));
  EXPECT_NE(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
}

TEST(DirectDopTest, SmokestackSuccessRateIsNegligible) {
  EXPECT_EQ(countDirectAttackSuccesses(/*Trials=*/200, /*Seed=*/7), 0u);
}

//===----------------------------------------------------------------------===//
// Indirect (pointer-corrupting) attacks from all three regions
//===----------------------------------------------------------------------===//

class IndirectAttackTest : public ::testing::TestWithParam<BufferRegion> {};

TEST_P(IndirectAttackTest, SucceedsAgainstBaseline) {
  AttackReport R = runIndirectPointerAttack(
      GetParam(), configFor(DefenseKind::None, nullptr));
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded)
      << bufferRegionName(GetParam()) << ": " << R.Detail;
}

TEST_P(IndirectAttackTest, BypassesStackCanary) {
  // Indirect writes never sweep the guard word — canaries are blind to
  // them, which is precisely why DOP moved to this technique.
  AttackReport R = runIndirectPointerAttack(
      GetParam(), configFor(DefenseKind::StackCanary, nullptr));
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded)
      << bufferRegionName(GetParam()) << ": " << R.Detail;
}

TEST_P(IndirectAttackTest, BypassesStaticPermutationOnMostBuilds) {
  // A one-shot shuffle occasionally strands the pointer cells below the
  // buffer, killing this particular exploit by luck; most builds remain
  // exploitable after a single probe.
  unsigned Successes = 0;
  for (uint64_t Build = 1; Build <= 8; ++Build) {
    AttackReport R = runIndirectPointerAttack(
        GetParam(),
        configFor(DefenseKind::StaticPermutation, nullptr, Build));
    Successes += R.Outcome == AttackOutcome::Succeeded;
  }
  EXPECT_GE(Successes, 2u) << bufferRegionName(GetParam());
}

TEST_P(IndirectAttackTest, SmokestackReducesSuccessToResidualLuck) {
  // Single-write attacks keep ~1/(#distinct layouts) per-try luck under
  // any randomization; the rate must collapse from 100% to a few percent.
  unsigned Successes =
      countIndirectAttackSuccesses(GetParam(), /*Trials=*/150, /*Seed=*/5);
  EXPECT_LT(Successes, 15u) << bufferRegionName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRegions, IndirectAttackTest,
                         ::testing::Values(BufferRegion::Stack,
                                           BufferRegion::Global,
                                           BufferRegion::Heap));

TEST(IndirectAttackTest2, StackRegionFailsFirstStepUnderSmokestack) {
  // Paper: "all of the indirect overflow attacks failed on the first step,
  // as they overwrote a different address than the intended pointer".
  // With the pointer cells themselves relocated, the corrupted cell holds
  // filler bytes and the program's write-through faults.
  RngBundle Rng(203);
  AttackReport R = runIndirectPointerAttack(
      BufferRegion::Stack, configFor(DefenseKind::Smokestack, &Rng.Source));
  EXPECT_EQ(R.Outcome, AttackOutcome::StoppedByTrap) << R.Detail;
  EXPECT_TRUE(R.Trap == TrapKind::UnmappedAccess ||
              R.Trap == TrapKind::FunctionIdViolation)
      << trapKindName(R.Trap);
}

//===----------------------------------------------------------------------===//
// PRNG state compromise
//===----------------------------------------------------------------------===//

TEST(PseudoPredictionTest, DisclosedStateVoidsSmokestack) {
  AttackReport R = runPseudoPredictionAttack(/*Seed=*/11);
  EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
}

TEST(PseudoPredictionTest, WorksAcrossSeeds) {
  for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
    AttackReport R = runPseudoPredictionAttack(Seed);
    EXPECT_EQ(R.Outcome, AttackOutcome::Succeeded)
        << "seed " << Seed << ": " << R.Detail;
  }
}
