//===- tests/common/RandomProgramGen.h - Random Mini-IR programs -*- C++ -*-===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared generator of random (but memory-safe) Mini-IR programs with
/// stack-heavy dataflow, used by the instrumentation differential fuzzer
/// and the decoded-vs-tree-walk engine differential test. Same seed, same
/// program — byte for byte — so independent modules built from one seed can
/// be compared across passes and engines.
///
//===----------------------------------------------------------------------===//

#ifndef SMOKESTACK_TESTS_COMMON_RANDOMPROGRAMGEN_H
#define SMOKESTACK_TESTS_COMMON_RANDOMPROGRAMGEN_H

#include "ir/IRBuilder.h"
#include "support/SplitMix64.h"

#include <string>
#include <vector>

namespace smokestack {

/// Generates one random function `main` with 2..6 locals (scalars and
/// byte buffers), a bounded loop, and a body of random in-bounds
/// loads/stores/arithmetic over them. All accesses are within the declared
/// objects, so baseline and hardened executions must agree bit for bit.
inline void buildRandomProgram(Module &M, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertPoint(Entry);
  struct Local {
    AllocaInst *Slot;
    bool IsBuffer;
    uint64_t Bytes;
  };
  std::vector<Local> Locals;
  unsigned NumLocals = 2 + Rng.nextBounded(5);
  for (unsigned I = 0; I != NumLocals; ++I) {
    if (Rng.nextBounded(3) == 0) {
      uint64_t Size = 8u << Rng.nextBounded(4); // 8..64 bytes
      AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), Size),
                                  "buf" + std::to_string(I));
      Locals.push_back({Buf, true, Size});
    } else {
      AllocaInst *Scalar = B.alloca_(B.i64(), "v" + std::to_string(I));
      Locals.push_back({Scalar, false, 8});
    }
  }
  AllocaInst *Acc = B.alloca_(B.i64(), "acc");
  AllocaInst *Idx = B.alloca_(B.i64(), "idx");
  // Sometimes add a VLA, exercising the pass's dynamic-padding path; it
  // joins the locals as a 16-byte buffer (count fixed so accesses stay in
  // bounds while the runtime treats the size as dynamic).
  if (Rng.nextBounded(2) == 0) {
    AllocaInst *VLA = B.allocaVLA(B.i8(), B.constI64(16), "vla");
    Locals.push_back({VLA, true, 16});
  }
  // Initialize everything deterministically.
  for (const Local &L : Locals) {
    if (L.IsBuffer) {
      for (uint64_t Off = 0; Off != L.Bytes; Off += 8)
        B.store(B.constI64(Seed * 31 + Off),
                B.gepConst(L.Slot, static_cast<int64_t>(Off)));
    } else {
      B.store(B.constI64(Seed ^ (Locals.size() * 7)), L.Slot);
    }
  }
  B.store(B.constI64(1), Acc);
  B.store(B.constI64(0), Idx);
  B.br(Loop);

  B.setInsertPoint(Loop);
  B.condBr(B.icmp(ICmpInst::Predicate::ULT, B.load(B.i64(), Idx),
                  B.constI64(4 + Rng.nextBounded(8))),
           Body, Exit);

  B.setInsertPoint(Body);
  // Random body: 4..12 operations over the locals.
  unsigned Ops = 4 + Rng.nextBounded(9);
  for (unsigned Op = 0; Op != Ops; ++Op) {
    const Local &L = Locals[Rng.nextBounded(Locals.size())];
    Value *Addr;
    if (L.IsBuffer) {
      // In-bounds 8-byte-aligned slot of the buffer.
      uint64_t Off = 8 * Rng.nextBounded(L.Bytes / 8);
      Addr = B.gepConst(L.Slot, static_cast<int64_t>(Off));
    } else {
      Addr = L.Slot;
    }
    Value *AccV = B.load(B.i64(), Acc);
    switch (Rng.nextBounded(4)) {
    case 0: { // fold a load into the accumulator
      Value *V = B.load(B.i64(), Addr);
      B.store(B.add(B.mul(AccV, B.constI64(1099511628211ULL)),
                    B.xor_(V, B.constI64(Rng.next()))),
              Acc);
      break;
    }
    case 1: // overwrite the local from the accumulator
      B.store(B.xor_(AccV, B.constI64(Rng.next())), Addr);
      break;
    case 2: { // arithmetic shuffle
      Value *V = B.load(B.i64(), Addr);
      Value *Mixed = B.add(B.shl(V, B.constI64(1 + Rng.nextBounded(7))),
                           B.lshr(AccV, B.constI64(Rng.nextBounded(8))));
      B.store(Mixed, Addr);
      break;
    }
    default: { // compare-select
      Value *V = B.load(B.i64(), Addr);
      Value *Cmp = B.icmp(ICmpInst::Predicate::ULT, V, AccV);
      B.store(B.select(Cmp, B.add(AccV, V), B.sub(AccV, V)), Acc);
      break;
    }
    }
  }
  B.store(B.add(B.load(B.i64(), Idx), B.constI64(1)), Idx);
  B.br(Loop);

  B.setInsertPoint(Exit);
  // Fold every local into the result so layout bugs cannot hide.
  Value *Result = B.load(B.i64(), Acc);
  for (const Local &L : Locals) {
    Value *Addr = L.IsBuffer ? static_cast<Value *>(B.gepConst(L.Slot, 0))
                             : static_cast<Value *>(L.Slot);
    Result = B.add(B.mul(Result, B.constI64(3)), B.load(B.i64(), Addr));
  }
  B.ret(Result);
}

} // namespace smokestack

#endif // SMOKESTACK_TESTS_COMMON_RANDOMPROGRAMGEN_H
