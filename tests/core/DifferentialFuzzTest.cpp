//===- tests/core/DifferentialFuzzTest.cpp - Randomized differential test -===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based differential testing of the instrumentation: generate
/// random (but memory-safe) programs with stack-heavy dataflow, run each
/// uninstrumented and Smokestack-hardened, and require identical results.
/// This is the strongest available guard against the pass breaking
/// semantics: any mis-sliced frame, clobbered slot, or bad offset shows up
/// as a checksum divergence or a trap.
///
//===----------------------------------------------------------------------===//

#include "core/SmokestackPass.h"
#include "common/RandomProgramGen.h"
#include "ir/Verifier.h"
#include "rng/AesCtr.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DifferentialFuzz, HardenedMatchesBaseline) {
  uint64_t Seed = GetParam();
  Module Plain("plain"), Hard("hard");
  buildRandomProgram(Plain, Seed);
  buildRandomProgram(Hard, Seed);
  ASSERT_TRUE(verifyModule(Plain));

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(Hard);
  ASSERT_TRUE(verifyModule(Hard));

  Interpreter PlainVM(Plain);
  ExecResult RP = PlainVM.run("main");
  ASSERT_TRUE(RP.ok()) << RP.Message;

  DeterministicEntropySource Entropy(Seed ^ 0xF022);
  AesCtrRandomSource Rng(Entropy, 10);
  Interpreter HardVM(Hard, &Rng);
  // Several hardened invocations: every drawn layout must agree with the
  // baseline result.
  for (int Trial = 0; Trial != 8; ++Trial) {
    ExecResult RH = HardVM.run("main");
    ASSERT_TRUE(RH.ok()) << "seed " << Seed << ": " << RH.Message;
    ASSERT_EQ(RH.ReturnValue, RP.ReturnValue) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 41));
