//===- tests/core/EntropyAnalysisTest.cpp - Layout entropy tests ---------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistical checks on the randomization quality that the security
/// argument rests on: per-invocation row selection must be uniform over
/// the P-BOX (biased selection concentrates layouts and hands entropy back
/// to a brute-forcing attacker), and the entropy must grow with the
/// allocation count as ~log2(N!).
///
//===----------------------------------------------------------------------===//

#include "core/FrameRuntime.h"
#include "core/SmokestackPass.h"
#include "ir/IRBuilder.h"
#include "rng/AesCtr.h"
#include "support/MathExtras.h"
#include "support/Statistics.h"
#include "vm/Interpreter.h"

#include <cmath>
#include <gtest/gtest.h>
#include <map>

using namespace smokestack;

TEST(EntropyAnalysisTest, RowSelectionIsUniformUnderAes10) {
  // 3 user slots + id -> 4! = 24 layouts over 32 physical rows (8 are
  // wrap-around duplicates, so expected counts are 2x for 8 layouts — use
  // physical-row counting, which IS uniform when selection is uniform).
  FrameDescriptor Desc({{64, 1, "buf"}, {8, 8, "len"}, {4, 4, "n"}});
  DeterministicEntropySource Entropy(0xE27);
  AesCtrRandomSource Rng(Entropy, 10);
  alignas(16) char Slab[4096];

  std::vector<uint64_t> Counts(Desc.table().numRows(), 0);
  constexpr unsigned Draws = 32 * 400;
  for (unsigned I = 0; I != Draws; ++I) {
    PermutedFrame Frame(Desc, Rng, Slab);
    ++Counts[Frame.row()];
  }
  double Stat = chiSquaredUniform(Counts);
  EXPECT_LT(Stat, chiSquaredCritical999(
                      static_cast<unsigned>(Counts.size() - 1)))
      << "row selection must be statistically uniform";
}

TEST(EntropyAnalysisTest, LayoutEntropyGrowsWithSlotCount) {
  DeterministicEntropySource Entropy(0xE28);
  AesCtrRandomSource Rng(Entropy, 10);
  alignas(16) char Slab[4096];

  double PrevEntropy = -1.0;
  for (unsigned Slots = 2; Slots <= 5; ++Slots) {
    std::vector<AllocationSlot> Spec;
    for (unsigned S = 0; S != Slots; ++S)
      Spec.push_back({8 * (S + 1), 8, "s"});
    FrameDescriptor Desc(Spec);

    // Empirical entropy of the FIRST slot's offset over many invocations.
    std::map<uint64_t, uint64_t> OffsetCounts;
    for (unsigned I = 0; I != 4000; ++I) {
      PermutedFrame Frame(Desc, Rng, Slab);
      ++OffsetCounts[reinterpret_cast<uintptr_t>(Frame.slot(0)) -
                     reinterpret_cast<uintptr_t>(Slab)];
    }
    std::vector<uint64_t> Counts;
    for (const auto &[Offset, Count] : OffsetCounts)
      Counts.push_back(Count);
    double Entropy = shannonEntropyBits(Counts);
    EXPECT_GT(Entropy, PrevEntropy)
        << "more allocations must mean more positional entropy";
    // With distinct sizes, slot 0 takes (Slots+1) distinct offsets at most
    // (it can be preceded by any subset... at least Slots+1 positions);
    // entropy is bounded by log2 of the distinct-offset count.
    EXPECT_LE(Entropy, std::log2(double(OffsetCounts.size())) + 1e-9);
    PrevEntropy = Entropy;
  }
}

TEST(EntropyAnalysisTest, InstrumentedProgramLayoutsAreUnbiased) {
  // End to end through the pass + VM: the probed offset of a local over
  // many invocations must cover multiple positions with near-maximal
  // entropy for the table in use.
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("probe", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *A = B.alloca_(B.i64(), "a");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "b");
  B.store(B.constI64(0), A);
  Value *AI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), A);
  Value *BI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), Buf);
  B.ret(B.sub(AI, BI));

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);

  DeterministicEntropySource Entropy(0xE29);
  AesCtrRandomSource Rng(Entropy, 10);
  Interpreter VM(M, &Rng);
  std::map<int64_t, uint64_t> DeltaCounts;
  for (int I = 0; I != 3000; ++I)
    ++DeltaCounts[static_cast<int64_t>(VM.run("probe").ReturnValue)];

  std::vector<uint64_t> Counts;
  for (const auto &[Delta, Count] : DeltaCounts)
    Counts.push_back(Count);
  ASSERT_GE(Counts.size(), 4u) << "3 permuted slots give >= 4 deltas";
  // Relative deltas need not be uniform (several permutations can share a
  // delta) but no single delta may dominate: that would be residual
  // predictability.
  uint64_t Max = 0;
  for (uint64_t Count : Counts)
    Max = std::max(Max, Count);
  EXPECT_LT(Max, 3000u / 2)
      << "no relative layout may occur in most invocations";
  EXPECT_GT(shannonEntropyBits(Counts), 1.5);
}

TEST(EntropyAnalysisTest, PaperEntropyTable) {
  // log2(N!) layout entropy per allocation count — the quantity behind the
  // paper's claim that padding + permutation defeats probabilistic attack.
  EXPECT_NEAR(std::log2(double(factorial(4))), 4.58, 0.01);
  EXPECT_NEAR(std::log2(double(factorial(8))), 15.3, 0.01);
  EXPECT_NEAR(std::log2(double(factorial(12))), 28.84, 0.01);
}
