//===- tests/core/FrameRuntimeTest.cpp - Native frame runtime tests ------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/FrameRuntime.h"

#include "rng/AesCtr.h"
#include "rng/Pseudo.h"

#include <cstring>
#include <gtest/gtest.h>
#include <set>

using namespace smokestack;

namespace {

FrameDescriptor makeDescriptor() {
  return FrameDescriptor({{64, 1, "buf"}, {8, 8, "len"}, {4, 4, "flag"}});
}

} // namespace

TEST(FrameRuntimeTest, SlotsAreDisjointAndInBounds) {
  FrameDescriptor Desc = makeDescriptor();
  DeterministicEntropySource Entropy(1);
  PseudoRandomSource Rng(Entropy);
  alignas(16) std::vector<char> Slab(Desc.frameSize());

  uint64_t Sizes[3] = {64, 8, 4};
  for (int Trial = 0; Trial != 100; ++Trial) {
    PermutedFrame Frame(Desc, Rng, Slab.data());
    std::vector<std::pair<uint64_t, uint64_t>> Intervals;
    for (unsigned I = 0; I != 3; ++I) {
      auto *P = static_cast<char *>(Frame.slot(I));
      ASSERT_GE(P, Slab.data());
      ASSERT_LE(P + Sizes[I], Slab.data() + Slab.size());
      Intervals.emplace_back(P - Slab.data(), P - Slab.data() + Sizes[I]);
    }
    std::sort(Intervals.begin(), Intervals.end());
    for (size_t I = 1; I != Intervals.size(); ++I)
      ASSERT_LE(Intervals[I - 1].second, Intervals[I].first);
  }
}

TEST(FrameRuntimeTest, LayoutVariesAcrossInvocations) {
  FrameDescriptor Desc = makeDescriptor();
  DeterministicEntropySource Entropy(2);
  PseudoRandomSource Rng(Entropy);
  alignas(16) std::vector<char> Slab(Desc.frameSize());

  std::set<uint64_t> BufOffsets;
  for (int Trial = 0; Trial != 64; ++Trial) {
    PermutedFrame Frame(Desc, Rng, Slab.data());
    BufOffsets.insert(static_cast<char *>(Frame.slot(0)) - Slab.data());
  }
  EXPECT_GT(BufOffsets.size(), 1u)
      << "per-invocation permutation must move the buffer around";
}

TEST(FrameRuntimeTest, RowsCoverTheTable) {
  FrameDescriptor Desc = makeDescriptor(); // 4 slots (incl. id) -> 24 -> 32
  DeterministicEntropySource Entropy(3);
  AesCtrRandomSource Rng(Entropy, 10);
  alignas(16) std::vector<char> Slab(Desc.frameSize());
  std::set<uint64_t> Rows;
  for (int Trial = 0; Trial != 2000; ++Trial) {
    PermutedFrame Frame(Desc, Rng, Slab.data());
    Rows.insert(Frame.row());
  }
  EXPECT_EQ(Rows.size(), Desc.table().numRows())
      << "a good RNG should hit every row of a 32-row table in 2000 draws";
}

TEST(FrameRuntimeTest, IdentifierCheckPassesWhenUntouched) {
  FrameDescriptor Desc = makeDescriptor();
  DeterministicEntropySource Entropy(4);
  PseudoRandomSource Rng(Entropy);
  alignas(16) std::vector<char> Slab(Desc.frameSize());
  for (int Trial = 0; Trial != 50; ++Trial) {
    PermutedFrame Frame(Desc, Rng, Slab.data());
    std::memset(Frame.slot(0), 0xAB, 64); // normal writes inside the slot
    EXPECT_TRUE(Frame.checkIdentifier());
  }
}

TEST(FrameRuntimeTest, IdentifierCheckCatchesFrameWideOverflow) {
  FrameDescriptor Desc = makeDescriptor();
  DeterministicEntropySource Entropy(5);
  PseudoRandomSource Rng(Entropy);
  alignas(16) std::vector<char> Slab(Desc.frameSize());
  PermutedFrame Frame(Desc, Rng, Slab.data());
  // A linear overflow sweeping the whole slab necessarily corrupts the
  // identifier tag wherever the permutation placed it.
  std::memset(Slab.data(), 0x41, Slab.size());
  EXPECT_FALSE(Frame.checkIdentifier());
}

TEST(FrameRuntimeTest, DistinctDescriptorsGetDistinctFunctionIds) {
  FrameDescriptor A({{8, 8, "x"}});
  FrameDescriptor B({{8, 8, "x"}});
  EXPECT_NE(A.functionId(), B.functionId());
}

TEST(FrameRuntimeTest, FrameSizeAccountsForIdentifierSlot) {
  // One 8-byte user slot + 8-byte id slot = 16 bytes minimum.
  FrameDescriptor Desc({{8, 8, "x"}});
  EXPECT_GE(Desc.frameSize(), 16u);
  EXPECT_EQ(Desc.numSlots(), 1u);
  EXPECT_EQ(Desc.table().numSlots(), 2u);
}
