//===- tests/core/PBoxPropertyTest.cpp - P-BOX property sweeps -----------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property sweeps over the P-BOX machinery: for many slot
/// configurations, every row of every (possibly shared or borrowed) table
/// must lay out every function's allocations soundly — aligned, disjoint,
/// inside the frame — through the same canonical-column mapping the
/// instrumentation uses.
///
//===----------------------------------------------------------------------===//

#include "core/PBox.h"

#include "support/Align.h"
#include "support/SplitMix64.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace smokestack;

namespace {

/// Deterministically builds a slot mix for a given seed: 1..7 slots drawn
/// from scalars and buffers with varied alignment.
std::vector<AllocationSlot> slotMix(uint64_t Seed) {
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<AllocationSlot> Slots;
  unsigned N = 1 + Rng.nextBounded(7);
  for (unsigned I = 0; I != N; ++I) {
    switch (Rng.nextBounded(5)) {
    case 0:
      Slots.push_back({1, 1, "c"});
      break;
    case 1:
      Slots.push_back({2, 2, "s"});
      break;
    case 2:
      Slots.push_back({4, 4, "i"});
      break;
    case 3:
      Slots.push_back({8, 8, "l"});
      break;
    default:
      Slots.push_back({8u << Rng.nextBounded(5), 1, "buf"});
      break;
    }
  }
  return Slots;
}

/// Checks that, for function slots \p Slots mapped through \p Sig into
/// \p Table, every row gives aligned, pairwise-disjoint, in-frame objects.
void expectSoundForFunction(const PBoxTable &Table,
                            const AllocationSignature &Sig,
                            const std::vector<AllocationSlot> &Slots) {
  const std::vector<unsigned> &Canon = Sig.originalToCanonical();
  for (uint64_t Row = 0; Row != Table.numRows(); ++Row) {
    std::vector<std::pair<uint64_t, uint64_t>> Intervals;
    for (size_t I = 0; I != Slots.size(); ++I) {
      uint64_t Off = Table.offsetAt(Row, Canon[I]);
      ASSERT_TRUE(isAligned(Off, Slots[I].Align))
          << "row " << Row << " slot " << I;
      ASSERT_LE(Off + Slots[I].Size, Table.frameSize());
      Intervals.emplace_back(Off, Off + Slots[I].Size);
    }
    std::sort(Intervals.begin(), Intervals.end());
    for (size_t I = 1; I != Intervals.size(); ++I)
      ASSERT_LE(Intervals[I - 1].second, Intervals[I].first)
          << "row " << Row << " slots overlap";
  }
}

class PBoxPropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(PBoxPropertyTest, EveryRowSoundThroughCanonicalMapping) {
  std::vector<AllocationSlot> Slots = slotMix(GetParam());
  PBox Box;
  AllocationSignature Sig;
  unsigned Id = Box.assignTable(Slots, Sig);
  expectSoundForFunction(Box.table(Id), Sig, Slots);
}

TEST_P(PBoxPropertyTest, ReversedDeclarationSharesAndStaysSound) {
  std::vector<AllocationSlot> Slots = slotMix(GetParam());
  std::vector<AllocationSlot> Reversed(Slots.rbegin(), Slots.rend());

  PBox Box;
  AllocationSignature SigA, SigB;
  unsigned IdA = Box.assignTable(Slots, SigA);
  unsigned IdB = Box.assignTable(Reversed, SigB);
  EXPECT_EQ(IdA, IdB) << "same multiset must share one table";
  expectSoundForFunction(Box.table(IdA), SigA, Slots);
  expectSoundForFunction(Box.table(IdB), SigB, Reversed);
}

TEST_P(PBoxPropertyTest, BorrowedTableLaysOutTheSmallerFunction) {
  std::vector<AllocationSlot> Big = slotMix(GetParam());
  // Append a primitive so Big = Small + one trailing scalar in canonical
  // order (primitives sort last).
  Big.push_back({4, 4, "extra"});
  std::vector<AllocationSlot> Small(Big.begin(), Big.end() - 1);

  PBox Box;
  AllocationSignature SigBig, SigSmall;
  unsigned IdBig = Box.assignTable(Big, SigBig);
  unsigned IdSmall = Box.assignTable(Small, SigSmall);
  if (IdBig == IdSmall) {
    // Round-up sharing engaged: the smaller function reads the first
    // columns of the bigger table and must still be sound.
    expectSoundForFunction(Box.table(IdSmall), SigSmall, Small);
  } else {
    // Canonical order put the extra primitive mid-sequence (e.g. an i4
    // before byte buffers) — sharing legitimately declined; both tables
    // must still be individually sound.
    expectSoundForFunction(Box.table(IdBig), SigBig, Big);
    expectSoundForFunction(Box.table(IdSmall), SigSmall, Small);
  }
}

TEST_P(PBoxPropertyTest, RowMaskAlwaysValidWhenPresent) {
  std::vector<AllocationSlot> Slots = slotMix(GetParam());
  PBox Box;
  AllocationSignature Sig;
  const PBoxTable &Table = Box.table(Box.assignTable(Slots, Sig));
  if (Table.rowMask()) {
    EXPECT_TRUE(isPowerOf2(Table.numRows()));
    EXPECT_EQ(Table.rowMask(), Table.numRows() - 1);
  }
  EXPECT_EQ(Table.rowStride(), uint64_t(Table.numSlots()) * 4);
}

INSTANTIATE_TEST_SUITE_P(Mixes, PBoxPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));
