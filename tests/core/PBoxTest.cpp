//===- tests/core/PBoxTest.cpp - P-BOX tests -----------------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PBox.h"

#include "support/MathExtras.h"

#include <gtest/gtest.h>
#include <set>

using namespace smokestack;

namespace {

std::vector<AllocationSlot> intDouble() {
  return {{4, 4, "i"}, {8, 8, "d"}};
}
std::vector<AllocationSlot> doubleInt() {
  return {{8, 8, "d"}, {4, 4, "i"}};
}

} // namespace

TEST(PBoxTest, PowerOfTwoPadding) {
  PBox Box;
  AllocationSignature Sig;
  unsigned Id = Box.assignTable(
      {{8, 8, "a"}, {4, 4, "b"}, {1, 1, "c"}}, Sig);
  const PBoxTable &Table = Box.table(Id);
  // 3! = 6 rows, padded to 8.
  EXPECT_EQ(Table.numRows(), 8u);
  EXPECT_EQ(Table.rowMask(), 7u);
}

TEST(PBoxTest, WithoutPowerOfTwoPaddingKeepsFactorialRows) {
  PBoxOptions Opts;
  Opts.PowerOfTwoRows = false;
  PBox Box(Opts);
  AllocationSignature Sig;
  unsigned Id = Box.assignTable(
      {{8, 8, "a"}, {4, 4, "b"}, {1, 1, "c"}}, Sig);
  EXPECT_EQ(Box.table(Id).numRows(), 6u);
  EXPECT_EQ(Box.table(Id).rowMask(), 0u) << "6 is not a power of two";
}

TEST(PBoxTest, PaddedRowsWrapAround) {
  // The two pad rows of a 6->8 padding must duplicate existing rows.
  PBox Box;
  AllocationSignature Sig;
  unsigned Id = Box.assignTable(
      {{8, 8, "a"}, {4, 4, "b"}, {1, 1, "c"}}, Sig);
  const PBoxTable &Table = Box.table(Id);
  std::set<std::vector<uint32_t>> Unique;
  for (uint64_t Row = 0; Row != Table.numRows(); ++Row) {
    std::vector<uint32_t> Offsets;
    for (unsigned Slot = 0; Slot != Table.numSlots(); ++Slot)
      Offsets.push_back(Table.offsetAt(Row, Slot));
    Unique.insert(Offsets);
  }
  EXPECT_EQ(Unique.size(), 6u) << "8 physical rows over 6 distinct layouts";
}

TEST(PBoxTest, RowsAreShuffled) {
  // After the compile-time row shuffle, rows must NOT be in lexical order
  // (that ordering is what lets an attacker infer neighbors).
  PBox Box;
  AllocationSignature Sig;
  std::vector<AllocationSlot> Slots = {
      {8, 8, "a"}, {16, 8, "b"}, {24, 8, "c"}, {32, 8, "d"}};
  unsigned Id = Box.assignTable(Slots, Sig);
  const PBoxTable &Table = Box.table(Id);

  bool InLexicalOrder = true;
  for (uint64_t Row = 0; Row != factorial(4); ++Row) {
    LayoutRow Lexical = decodePermutationLayout(Row, Slots);
    for (unsigned Slot = 0; Slot != 4; ++Slot)
      if (Table.offsetAt(Row, Sig.originalToCanonical()[Slot]) !=
          Lexical.Offsets[Slot])
        InLexicalOrder = false;
  }
  EXPECT_FALSE(InLexicalOrder);
}

TEST(PBoxTest, ShareByMultisetMergesReorderedSignatures) {
  PBox Box;
  AllocationSignature SigA, SigB;
  unsigned IdA = Box.assignTable(intDouble(), SigA);
  unsigned IdB = Box.assignTable(doubleInt(), SigB);
  EXPECT_EQ(IdA, IdB) << "paper example: f1(int,double) shares with "
                         "f2(double,int)";
  EXPECT_EQ(Box.numTables(), 1u);
  EXPECT_EQ(Box.shareHits(), 1u);
  // The canonical mapping differs per function even though the table is
  // shared: the int maps to the same canonical column in both.
  EXPECT_EQ(SigA.originalToCanonical()[0], SigB.originalToCanonical()[1]);
  EXPECT_EQ(SigA.originalToCanonical()[1], SigB.originalToCanonical()[0]);
}

TEST(PBoxTest, WithoutMultisetSharingTablesAreDistinct) {
  PBoxOptions Opts;
  Opts.ShareByMultiset = false;
  Opts.RoundUpSharing = false;
  PBox Box(Opts);
  AllocationSignature Sig;
  unsigned IdA = Box.assignTable(intDouble(), Sig);
  unsigned IdB = Box.assignTable(doubleInt(), Sig);
  EXPECT_NE(IdA, IdB);
  EXPECT_EQ(Box.numTables(), 2u);
}

TEST(PBoxTest, RoundUpSharingBorrowsBiggerTable) {
  PBox Box;
  AllocationSignature Sig;
  // Paper example: f1(double,double,int) and f2(double,double).
  unsigned Big = Box.assignTable(
      {{8, 8, "d1"}, {8, 8, "d2"}, {4, 4, "i"}}, Sig);
  unsigned Small = Box.assignTable({{8, 8, "d1"}, {8, 8, "d2"}}, Sig);
  EXPECT_EQ(Big, Small);
  EXPECT_EQ(Box.numTables(), 1u);
  // The smaller function pays the bigger table's frame (extra padding).
  EXPECT_EQ(Box.table(Small).numSlots(), 3u);
  EXPECT_GE(Box.table(Small).frameSize(), 16u);
}

TEST(PBoxTest, RoundUpSharingDisabledBuildsBothTables) {
  PBoxOptions Opts;
  Opts.RoundUpSharing = false;
  PBox Box(Opts);
  AllocationSignature Sig;
  unsigned Big =
      Box.assignTable({{8, 8, "d1"}, {8, 8, "d2"}, {4, 4, "i"}}, Sig);
  unsigned Small = Box.assignTable({{8, 8, "d1"}, {8, 8, "d2"}}, Sig);
  EXPECT_NE(Big, Small);
  EXPECT_EQ(Box.numTables(), 2u);
}

TEST(PBoxTest, RoundUpRequiresPrimitiveExtra) {
  PBox Box;
  AllocationSignature Sig;
  // Extra slot is a 64-byte buffer: too big to round up into.
  unsigned Big =
      Box.assignTable({{8, 8, "d1"}, {8, 8, "d2"}, {64, 1, "buf"}}, Sig);
  unsigned Small = Box.assignTable({{8, 8, "d1"}, {8, 8, "d2"}}, Sig);
  EXPECT_NE(Big, Small);
}

TEST(PBoxTest, SerializeRoundTrip) {
  PBox Box;
  AllocationSignature Sig;
  Box.assignTable({{4, 4, "i"}, {8, 8, "d"}}, Sig);
  Box.assignTable({{16, 8, "b"}, {8, 8, "x"}, {1, 1, "c"}}, Sig);
  std::vector<uint64_t> Offsets;
  std::vector<uint8_t> Blob = Box.serialize(Offsets);
  ASSERT_EQ(Offsets.size(), Box.numTables());
  EXPECT_EQ(Blob.size(), Box.totalBytes());
  for (unsigned Id = 0; Id != Box.numTables(); ++Id) {
    const PBoxTable &Table = Box.table(Id);
    for (uint64_t Row = 0; Row != Table.numRows(); ++Row)
      for (unsigned Slot = 0; Slot != Table.numSlots(); ++Slot) {
        uint64_t Byte = Offsets[Id] + (Row * Table.numSlots() + Slot) * 4;
        uint32_t Decoded = Blob[Byte] | (Blob[Byte + 1] << 8) |
                           (Blob[Byte + 2] << 16) | (Blob[Byte + 3] << 24);
        ASSERT_EQ(Decoded, Table.offsetAt(Row, Slot));
      }
  }
}

TEST(PBoxTest, LargeAllocationSetUsesSampledRows) {
  PBoxOptions Opts;
  Opts.MaxExhaustiveSlots = 8;
  Opts.SampledRows = 1024;
  PBox Box(Opts);
  std::vector<AllocationSlot> Slots;
  for (unsigned I = 0; I != 12; ++I)
    Slots.push_back({8 + 8 * (I % 3), 8, "s" + std::to_string(I)});
  AllocationSignature Sig;
  unsigned Id = Box.assignTable(Slots, Sig);
  const PBoxTable &Table = Box.table(Id);
  EXPECT_EQ(Table.numRows(), 1024u);
  EXPECT_EQ(Table.rowMask(), 1023u);

  // Every sampled row must still be a sound layout.
  for (uint64_t Row = 0; Row != Table.numRows(); ++Row) {
    std::vector<std::pair<uint64_t, uint64_t>> Intervals;
    for (unsigned Slot = 0; Slot != Table.numSlots(); ++Slot) {
      uint64_t Off = Table.offsetAt(Row, Slot);
      uint64_t Size = Sig.slots()[Slot].first;
      ASSERT_EQ(Off % Sig.slots()[Slot].second, 0u);
      Intervals.emplace_back(Off, Off + Size);
    }
    std::sort(Intervals.begin(), Intervals.end());
    for (size_t I = 1; I != Intervals.size(); ++I)
      ASSERT_LE(Intervals[I - 1].second, Intervals[I].first);
  }
}

TEST(PBoxTest, FrameSizeCoversEveryRow) {
  PBox Box;
  AllocationSignature Sig;
  unsigned Id = Box.assignTable(
      {{8, 8, "a"}, {1, 1, "b"}, {4, 4, "c"}, {16, 8, "d"}}, Sig);
  const PBoxTable &Table = Box.table(Id);
  EXPECT_EQ(Table.frameSize() % 16, 0u);
  for (uint64_t Row = 0; Row != Table.numRows(); ++Row)
    for (unsigned Slot = 0; Slot != Table.numSlots(); ++Slot)
      EXPECT_LE(Table.offsetAt(Row, Slot) + Sig.slots()[Slot].first,
                Table.frameSize());
}
