//===- tests/core/PermutationEngineTest.cpp - Algorithm 1 tests ----------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PermutationEngine.h"

#include "support/Align.h"
#include "support/MathExtras.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>
#include <set>

using namespace smokestack;

namespace {

/// Checks a layout row is sound for \p Slots: every object aligned, all
/// objects disjoint, packed within TotalSize.
void expectSoundLayout(const LayoutRow &Row,
                       const std::vector<AllocationSlot> &Slots) {
  ASSERT_EQ(Row.Offsets.size(), Slots.size());
  std::vector<std::pair<uint64_t, uint64_t>> Intervals; // (start, end)
  for (size_t I = 0; I != Slots.size(); ++I) {
    EXPECT_TRUE(isAligned(Row.Offsets[I], Slots[I].Align))
        << "slot " << I << " offset " << Row.Offsets[I];
    Intervals.emplace_back(Row.Offsets[I], Row.Offsets[I] + Slots[I].Size);
    EXPECT_LE(Intervals.back().second, Row.TotalSize);
  }
  std::sort(Intervals.begin(), Intervals.end());
  for (size_t I = 1; I != Intervals.size(); ++I)
    EXPECT_LE(Intervals[I - 1].second, Intervals[I].first)
        << "slots overlap";
}

std::vector<AllocationSlot> mixedSlots() {
  return {{8, 8, "a"}, {1, 1, "b"}, {4, 4, "c"}, {16, 8, "d"}};
}

} // namespace

TEST(PermutationEngineTest, IndexZeroIsDeclarationOrder) {
  std::vector<AllocationSlot> Slots = {{4, 4, "x"}, {8, 8, "y"}, {1, 1, "z"}};
  LayoutRow Row = decodePermutationLayout(0, Slots);
  // Declaration order with ALIGN padding: x@0, y@8 (aligned up from 4), z@16.
  EXPECT_EQ(Row.Offsets[0], 0u);
  EXPECT_EQ(Row.Offsets[1], 8u);
  EXPECT_EQ(Row.Offsets[2], 16u);
  EXPECT_EQ(Row.TotalSize, 17u);
}

TEST(PermutationEngineTest, LastIndexIsReverseOrder) {
  std::vector<AllocationSlot> Slots = {{4, 4, "x"}, {8, 8, "y"}, {1, 1, "z"}};
  LayoutRow Row = decodePermutationLayout(factorial(3) - 1, Slots);
  // Reverse placement: z@0, y@8, x@16.
  EXPECT_EQ(Row.Offsets[2], 0u);
  EXPECT_EQ(Row.Offsets[1], 8u);
  EXPECT_EQ(Row.Offsets[0], 16u);
}

/// Property: every permutation index yields a sound layout, and the
/// placement order matches the std::next_permutation oracle.
class AllPermutationsSoundTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AllPermutationsSoundTest, SoundAndLexical) {
  unsigned N = GetParam();
  std::vector<AllocationSlot> Slots;
  // Distinct sizes so placement order is recoverable from offsets.
  for (unsigned I = 0; I != N; ++I)
    Slots.push_back({8 * (I + 1), 8, "s" + std::to_string(I)});

  std::vector<unsigned> Oracle(N);
  std::iota(Oracle.begin(), Oracle.end(), 0u);
  uint64_t Index = 0;
  do {
    LayoutRow Row = decodePermutationLayout(Index, Slots);
    expectSoundLayout(Row, Slots);
    // Recover placement order by sorting slots by offset; must equal the
    // oracle permutation.
    std::vector<unsigned> Placed(N);
    std::iota(Placed.begin(), Placed.end(), 0u);
    std::sort(Placed.begin(), Placed.end(), [&](unsigned A, unsigned B) {
      return Row.Offsets[A] < Row.Offsets[B];
    });
    ASSERT_EQ(Placed, Oracle) << "index " << Index;
    ++Index;
  } while (std::next_permutation(Oracle.begin(), Oracle.end()));
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, AllPermutationsSoundTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(PermutationEngineTest, MixedAlignmentsAllRowsSound) {
  std::vector<AllocationSlot> Slots = mixedSlots();
  std::vector<LayoutRow> Table = generateAllPermutations(Slots);
  ASSERT_EQ(Table.size(), factorial(4));
  for (const LayoutRow &Row : Table)
    expectSoundLayout(Row, Slots);
}

TEST(PermutationEngineTest, PaddingVariesAcrossPermutations) {
  // The paper notes alignment padding differs per permutation — an extra
  // entropy source. With mixed alignments, TotalSize must not be constant.
  std::vector<LayoutRow> Table = generateAllPermutations(mixedSlots());
  std::set<uint32_t> Totals;
  for (const LayoutRow &Row : Table)
    Totals.insert(Row.TotalSize);
  EXPECT_GT(Totals.size(), 1u);
}

TEST(PermutationEngineTest, OffsetsDifferBetweenPermutations) {
  std::vector<LayoutRow> Table = generateAllPermutations(mixedSlots());
  std::set<std::vector<uint32_t>> Unique;
  for (const LayoutRow &Row : Table)
    Unique.insert(Row.Offsets);
  EXPECT_EQ(Unique.size(), Table.size())
      << "distinct-size slots give every permutation a distinct offset row";
}

TEST(PermutationEngineTest, MaxFrameSizeBoundsAllRows) {
  std::vector<AllocationSlot> Slots = mixedSlots();
  uint64_t Bound = maxFrameSize(Slots);
  for (const LayoutRow &Row : generateAllPermutations(Slots))
    EXPECT_LE(Row.TotalSize, Bound);
}

TEST(PermutationEngineTest, SingleSlot) {
  std::vector<AllocationSlot> Slots = {{24, 8, "only"}};
  std::vector<LayoutRow> Table = generateAllPermutations(Slots);
  ASSERT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table[0].Offsets[0], 0u);
  EXPECT_EQ(Table[0].TotalSize, 24u);
}
