//===- tests/core/SmokestackPassTest.cpp - Instrumentation tests ---------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests of the instrumentation pass: a module is built, passed
/// through SmokestackPass, and executed in the VM. Functional behavior must
/// be preserved while the frame layout changes per invocation.
///
//===----------------------------------------------------------------------===//

#include "core/SmokestackPass.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "rng/AesCtr.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>
#include <memory>
#include <set>

using namespace smokestack;

namespace {

/// Builds i64 compute(i64 n): uses three locals; returns deterministic
/// arithmetic so instrumentation-induced breakage is visible.
void buildCompute(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("compute", B.i64(), {B.i64()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  AllocaInst *Acc = B.alloca_(B.i64(), "acc");
  AllocaInst *I = B.alloca_(B.i32(), "i");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 32), "buf");
  B.store(B.constI64(1), Acc);
  B.store(B.constI32(0), I);
  // Touch the buffer so it is genuinely used.
  B.store(B.constI8(7), B.gepConst(Buf, 3));
  B.br(Loop);
  B.setInsertPoint(Loop);
  Value *IV = B.zext(B.i64(), B.load(B.i32(), I));
  B.condBr(B.icmp(ICmpInst::Predicate::ULT, IV, F->getArg(0)), Body, Exit);
  B.setInsertPoint(Body);
  Value *AccV = B.load(B.i64(), Acc);
  Value *BufByte = B.zext(B.i64(), B.load(B.i8(), B.gepConst(Buf, 3)));
  B.store(B.add(B.mul(AccV, B.constI64(3)), BufByte), Acc);
  B.store(B.add(B.load(B.i32(), I), B.constI32(1)), I);
  B.br(Loop);
  B.setInsertPoint(Exit);
  B.ret(B.load(B.i64(), Acc));
}

/// Builds i64 delta(): returns (addr of a) - (addr of b) to expose layout.
void buildDelta(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("delta", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *A = B.alloca_(B.i64(), "a");
  AllocaInst *Bv = B.alloca_(B.getContext().getArrayTy(B.i8(), 24), "b");
  AllocaInst *C = B.alloca_(B.i32(), "c");
  B.store(B.constI64(0), A);
  B.store(B.constI32(0), C);
  Value *AI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), A);
  Value *BI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), Bv);
  B.ret(B.sub(AI, BI));
}

/// Entropy + AES-10 source with tied lifetimes for tests.
struct RngBundle {
  DeterministicEntropySource Entropy;
  AesCtrRandomSource Source;
  explicit RngBundle(uint64_t Seed) : Entropy(Seed), Source(Entropy, 10) {}
};

} // namespace

TEST(SmokestackPassTest, PreservesBehavior) {
  Module Plain("plain"), Hardened("hard");
  buildCompute(Plain);
  buildCompute(Hardened);

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(Hardened);
  ASSERT_TRUE(verifyModule(Hardened));

  RngBundle Rng(7);
  Interpreter PlainVM(Plain);
  Interpreter HardVM(Hardened, &Rng.Source);
  for (uint64_t N : {0ull, 1ull, 5ull, 17ull}) {
    ExecResult RP = PlainVM.run("compute", {N});
    ExecResult RH = HardVM.run("compute", {N});
    ASSERT_TRUE(RP.ok());
    ASSERT_TRUE(RH.ok()) << RH.Message;
    EXPECT_EQ(RP.ReturnValue, RH.ReturnValue) << "n=" << N;
  }
}

TEST(SmokestackPassTest, LayoutChangesAcrossInvocations) {
  Module M("m");
  buildDelta(M);
  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);

  RngBundle Rng(11);
  Interpreter VM(M, &Rng.Source);
  std::set<int64_t> Deltas;
  for (int Trial = 0; Trial != 64; ++Trial) {
    ExecResult R = VM.run("delta");
    ASSERT_TRUE(R.ok()) << R.Message;
    Deltas.insert(static_cast<int64_t>(R.ReturnValue));
  }
  EXPECT_GT(Deltas.size(), 2u)
      << "relative distance between locals must vary per invocation";
}

TEST(SmokestackPassTest, UninstrumentedLayoutIsConstant) {
  Module M("m");
  buildDelta(M);
  Interpreter VM(M);
  std::set<int64_t> Deltas;
  for (int Trial = 0; Trial != 16; ++Trial)
    Deltas.insert(static_cast<int64_t>(VM.run("delta").ReturnValue));
  EXPECT_EQ(Deltas.size(), 1u) << "baseline layout is deterministic";
}

TEST(SmokestackPassTest, EmitsReadOnlyPBoxGlobal) {
  Module M("m");
  buildCompute(M);
  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);
  GlobalVariable *G = M.getGlobal(PBoxGlobalName);
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->isReadOnly());
  EXPECT_GT(G->getInitializer().size(), 0u);
}

TEST(SmokestackPassTest, FrameWideOverflowTripsFunctionIdCheck) {
  // A function that memsets from its buffer to the end of the frame; the
  // identifier slot is clobbered whenever the permutation put it above the
  // buffer, producing FunctionIdViolation on some invocations.
  Module M("m");
  IRBuilder B(M);
  Function *Memset =
      M.getOrInsertDeclaration("memset", B.ptr(), {B.ptr(), B.i32(), B.i64()});
  Function *F = M.createFunction("smash", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *X = B.alloca_(B.i64(), "x");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  B.store(B.constI64(5), X);
  B.call(Memset, {Buf, B.constI32('A'), B.constI64(128)}); // way past buf
  B.ret(B.load(B.i64(), X));

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);

  RngBundle Rng(13);
  Interpreter VM(M, &Rng.Source);
  int Violations = 0, Clean = 0;
  for (int Trial = 0; Trial != 64; ++Trial) {
    ExecResult R = VM.run("smash");
    if (R.Trap == TrapKind::FunctionIdViolation)
      ++Violations;
    else
      ++Clean;
  }
  EXPECT_GT(Violations, 0) << "id slot must land above buf sometimes";
}

TEST(SmokestackPassTest, MultipleReturnsAllChecked) {
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("branchy", B.i64(), {B.i64()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  B.setInsertPoint(Entry);
  AllocaInst *X = B.alloca_(B.i64(), "x");
  B.store(F->getArg(0), X);
  B.condBr(B.icmp(ICmpInst::Predicate::SGT, F->getArg(0), B.constI64(10)),
           Then, Else);
  B.setInsertPoint(Then);
  B.ret(B.constI64(1));
  B.setInsertPoint(Else);
  B.ret(B.load(B.i64(), X));

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);
  ASSERT_TRUE(verifyModule(M));

  RngBundle Rng(17);
  Interpreter VM(M, &Rng.Source);
  EXPECT_EQ(VM.run("branchy", {50}).ReturnValue, 1u);
  EXPECT_EQ(VM.run("branchy", {3}).ReturnValue, 3u);
}

TEST(SmokestackPassTest, VLAPlacementIsRandomized) {
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("vla", B.i64(), {B.i64()});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Anchor = B.alloca_(B.i64(), "anchor");
  B.store(B.constI64(0), Anchor);
  AllocaInst *VLA = B.allocaVLA(B.i8(), F->getArg(0), "vbuf");
  Value *VI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), VLA);
  Value *AI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), Anchor);
  B.ret(B.sub(AI, VI));

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);
  ASSERT_TRUE(verifyModule(M));

  RngBundle Rng(19);
  Interpreter VM(M, &Rng.Source);
  std::set<uint64_t> Gaps;
  for (int Trial = 0; Trial != 32; ++Trial) {
    ExecResult R = VM.run("vla", {64});
    ASSERT_TRUE(R.ok()) << R.Message;
    Gaps.insert(R.ReturnValue);
  }
  EXPECT_GT(Gaps.size(), 2u)
      << "random dummy padding must move the VLA relative to the frame";
}

TEST(SmokestackPassTest, FunctionsWithSameSignatureShareTable) {
  Module M("m");
  IRBuilder B(M);
  for (const char *Name : {"f1", "f2"}) {
    Function *F = M.createFunction(Name, B.voidTy(), {});
    B.setInsertPoint(F->createBlock("entry"));
    // f1: (i32, double), f2 same multiset; both get the same P-BOX table.
    if (Name[1] == '1') {
      B.alloca_(B.i32(), "i");
      B.alloca_(B.f64(), "d");
    } else {
      B.alloca_(B.f64(), "d");
      B.alloca_(B.i32(), "i");
    }
    B.ret();
  }
  PassManager PM;
  auto PassPtr = std::make_unique<SmokestackPass>();
  const PBox *Box = &PassPtr->pbox();
  SmokestackPass *Raw = PassPtr.get();
  PM.addPass(std::move(PassPtr));
  PM.run(M);
  EXPECT_EQ(Box->numTables(), 1u);
  EXPECT_EQ(Raw->functionsInstrumented(), 2u);
  EXPECT_EQ(*M.getFunction("f1")->getAttribute("smokestack.table"),
            *M.getFunction("f2")->getAttribute("smokestack.table"));
}

TEST(SmokestackPassTest, DisablingIdChecksSkipsEpilogue) {
  Module M("m");
  buildDelta(M);
  SmokestackOptions Opts;
  Opts.FunctionIdChecks = false;
  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>(Opts));
  PM.run(M);
  ASSERT_TRUE(verifyModule(M));
  // No trap block emitted.
  Function *F = M.getFunction("delta");
  for (const auto &Block : *F)
    EXPECT_NE(Block->getName(), "ss.trap");
  RngBundle Rng(23);
  Interpreter VM(M, &Rng.Source);
  EXPECT_TRUE(VM.run("delta").ok());
}

TEST(SmokestackPassTest, RecursiveFunctionStillWorks) {
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("fact", B.i64(), {B.i64()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Base = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  B.setInsertPoint(Entry);
  AllocaInst *N = B.alloca_(B.i64(), "n");
  B.store(F->getArg(0), N);
  B.condBr(B.icmp(ICmpInst::Predicate::SLE, B.load(B.i64(), N),
                  B.constI64(1)),
           Base, Rec);
  B.setInsertPoint(Base);
  B.ret(B.constI64(1));
  B.setInsertPoint(Rec);
  Value *NV = B.load(B.i64(), N);
  Value *Sub = B.call(F, {B.sub(NV, B.constI64(1))});
  B.ret(B.mul(NV, Sub));

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);
  RngBundle Rng(29);
  Interpreter VM(M, &Rng.Source);
  ExecResult R = VM.run("fact", {10});
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 3628800u);
}
