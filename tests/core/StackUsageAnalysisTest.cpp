//===- tests/core/StackUsageAnalysisTest.cpp - Frame statistics tests ----===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/StackUsageAnalysis.h"

#include "ir/IRBuilder.h"
#include "support/RawStream.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

Module *buildSample(Module &M) {
  IRBuilder B(M);
  // f1: 3 static allocations, one VLA.
  Function *F1 = M.createFunction("f1", B.voidTy(), {B.i64()});
  B.setInsertPoint(F1->createBlock("entry"));
  B.alloca_(B.getContext().getArrayTy(B.i8(), 64), "buf");
  B.alloca_(B.i64(), "x");
  B.alloca_(B.i32(), "y", /*AlignOverride=*/32);
  B.allocaVLA(B.i8(), F1->getArg(0), "v");
  B.ret();
  // f2: same multiset, different order.
  Function *F2 = M.createFunction("f2", B.voidTy(), {});
  B.setInsertPoint(F2->createBlock("entry"));
  B.alloca_(B.i32(), "y", /*AlignOverride=*/32);
  B.alloca_(B.i64(), "x");
  B.alloca_(B.getContext().getArrayTy(B.i8(), 64), "buf");
  B.ret();
  // f3: no stack frame.
  Function *F3 = M.createFunction("f3", B.i64(), {B.i64()});
  B.setInsertPoint(F3->createBlock("entry"));
  B.ret(F3->getArg(0));
  // A declaration must be skipped entirely.
  M.getOrInsertDeclaration("memcpy", B.ptr(), {B.ptr(), B.ptr(), B.i64()});
  return &M;
}

} // namespace

TEST(StackUsageAnalysisTest, PerFunctionProfile) {
  Module M("m");
  buildSample(M);
  FunctionStackUsage F1 = analyzeFunctionStackUsage(*M.getFunction("f1"));
  EXPECT_EQ(F1.Slots.size(), 3u);
  EXPECT_EQ(F1.StaticBytes, 64u + 8 + 4);
  EXPECT_EQ(F1.LargestAllocation, 64u);
  EXPECT_EQ(F1.MaxAlignment, 32u) << "the alloca's override counts";
  EXPECT_EQ(F1.VLACount, 1u);
  EXPECT_TRUE(F1.instrumentable());
  // Worst frame: slots + id slot, with worst-case padding, 16-aligned.
  EXPECT_GE(F1.WorstCaseFrameBytes, 64u + 8 + 4 + 8);
  EXPECT_EQ(F1.WorstCaseFrameBytes % 16, 0u);

  FunctionStackUsage F3 = analyzeFunctionStackUsage(*M.getFunction("f3"));
  EXPECT_FALSE(F3.instrumentable());
  EXPECT_EQ(F3.WorstCaseFrameBytes, 0u);
}

TEST(StackUsageAnalysisTest, ModuleAggregates) {
  Module M("m");
  buildSample(M);
  ModuleStackUsage Usage = analyzeModuleStackUsage(M);
  EXPECT_EQ(Usage.Functions.size(), 3u) << "declarations are skipped";
  EXPECT_EQ(Usage.InstrumentableFunctions, 2u);
  EXPECT_EQ(Usage.FunctionsWithVLAs, 1u);
  EXPECT_EQ(Usage.TotalStaticBytes, 2 * (64u + 8 + 4));
  EXPECT_EQ(Usage.DistinctSignatures, 1u)
      << "f1 and f2 share one canonical signature";
  ASSERT_NE(Usage.find("f1"), nullptr);
  EXPECT_EQ(Usage.find("missing"), nullptr);
}

TEST(StackUsageAnalysisTest, ReportPrints) {
  Module M("m");
  buildSample(M);
  std::string Text;
  RawStringOStream OS(Text);
  printStackUsage(analyzeModuleStackUsage(M), OS);
  EXPECT_NE(Text.find("f1"), std::string::npos);
  EXPECT_NE(Text.find("2 instrumentable function(s)"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("1 distinct signature(s)"), std::string::npos) << Text;
}
