//===- tests/defenses/BaselineDefensesTest.cpp - Baseline defense tests ---===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "defenses/BaselineDefenses.h"

#include "defenses/Deploy.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>
#include <set>

using namespace smokestack;

namespace {

/// i64 delta(): layout probe — distance between two locals, plus behavior
/// check through a computed value.
void buildProbe(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("probe", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *A = B.alloca_(B.i64(), "a");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 24), "buf");
  AllocaInst *C = B.alloca_(B.i32(), "c");
  B.store(B.constI64(0), A);
  B.store(B.constI32(0), C);
  Value *AI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), A);
  Value *BI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), Buf);
  B.ret(B.sub(AI, BI));
}

/// i64 addr(): absolute address of a local.
void buildAddrProbe(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("addr", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 64), "buf");
  B.store(B.constI8(1), Buf);
  B.ret(B.cast_(CastInst::CastOp::PtrToInt, B.i64(), Buf));
}

} // namespace

TEST(StaticPermutationTest, ShufflesLayoutOnceAtCompileTime) {
  std::set<int64_t> DeltasAcrossBuilds;
  for (uint64_t Build = 0; Build != 16; ++Build) {
    Module M("m");
    buildProbe(M);
    PassManager PM;
    PM.addPass(std::make_unique<StaticPermutationPass>(Build));
    PM.run(M);
    ASSERT_TRUE(verifyModule(M));

    // Within one build, every run and invocation sees the same layout.
    Interpreter VM(M);
    int64_t First = static_cast<int64_t>(VM.run("probe").ReturnValue);
    for (int Trial = 0; Trial != 8; ++Trial)
      ASSERT_EQ(static_cast<int64_t>(VM.run("probe").ReturnValue), First);
    DeltasAcrossBuilds.insert(First);
  }
  EXPECT_GT(DeltasAcrossBuilds.size(), 1u)
      << "different builds should pick different layouts";
}

TEST(StaticPermutationTest, PreservesBehavior) {
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("sum", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *X = B.alloca_(B.i64(), "x");
  AllocaInst *Y = B.alloca_(B.i64(), "y");
  AllocaInst *Z = B.alloca_(B.i64(), "z");
  B.store(B.constI64(5), X);
  B.store(B.constI64(7), Y);
  B.store(B.constI64(9), Z);
  B.ret(B.add(B.add(B.load(B.i64(), X), B.load(B.i64(), Y)),
              B.load(B.i64(), Z)));
  PassManager PM;
  PM.addPass(std::make_unique<StaticPermutationPass>(3));
  PM.run(M);
  Interpreter VM(M);
  EXPECT_EQ(VM.run("sum").ReturnValue, 21u);
}

TEST(EntryPaddingTest, PadsLargeFramesOnly) {
  Module M("m");
  IRBuilder B(M);
  // Small frame: single i64 (8 bytes <= 16) — must not be padded.
  Function *Small = M.createFunction("small", B.voidTy(), {});
  B.setInsertPoint(Small->createBlock("entry"));
  B.alloca_(B.i64(), "x");
  B.ret();
  // Large frame: 24-byte buffer.
  Function *Large = M.createFunction("large", B.voidTy(), {});
  B.setInsertPoint(Large->createBlock("entry"));
  B.alloca_(B.getContext().getArrayTy(B.i8(), 24), "buf");
  B.ret();

  PassManager PM;
  PM.addPass(std::make_unique<EntryPaddingPass>(1));
  PM.run(M);

  EXPECT_FALSE(Small->getAttribute("entrypad.bytes").has_value());
  ASSERT_TRUE(Large->getAttribute("entrypad.bytes").has_value());
  uint64_t Pad = *Large->getAttribute("entrypad.bytes");
  EXPECT_GE(Pad, 8u);
  EXPECT_LE(Pad, 64u);
  EXPECT_EQ(Pad % 8, 0u);
}

TEST(EntryPaddingTest, ShiftsAbsoluteButNotRelativeAddresses) {
  // The crucial weakness: padding moves the whole frame but keeps the
  // distances between locals — DOP needs only the relative distance.
  std::set<int64_t> Deltas;
  std::set<uint64_t> Addrs;
  for (uint64_t Build = 0; Build != 16; ++Build) {
    Module M("m");
    buildProbe(M);
    buildAddrProbe(M);
    PassManager PM;
    PM.addPass(std::make_unique<EntryPaddingPass>(Build));
    PM.run(M);
    Interpreter VM(M);
    Deltas.insert(static_cast<int64_t>(VM.run("probe").ReturnValue));
    Addrs.insert(VM.run("addr").ReturnValue);
  }
  EXPECT_EQ(Deltas.size(), 1u) << "relative distances are invariant";
  EXPECT_GT(Addrs.size(), 1u) << "absolute addresses do move";
}

TEST(StackCanaryTest, CatchesLinearOverflowPastFrame) {
  // Overflow from a local buffer across the whole frame clobbers the
  // canary (declared first = highest address), trapping at the epilogue.
  Module M("m");
  IRBuilder B(M);
  Function *Memset =
      M.getOrInsertDeclaration("memset", B.ptr(), {B.ptr(), B.i32(), B.i64()});
  Function *F = M.createFunction("smash", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  B.call(Memset, {Buf, B.constI32('A'), B.constI64(64)});
  B.ret();

  PassManager PM;
  PM.addPass(std::make_unique<StackCanaryPass>(0x1234567890abcdefULL));
  PM.run(M);
  ASSERT_TRUE(verifyModule(M));

  Interpreter VM(M);
  EXPECT_EQ(VM.run("smash").Trap, TrapKind::CanaryViolation);
}

TEST(StackCanaryTest, BenignExecutionPasses) {
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("fine", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *X = B.alloca_(B.i64(), "x");
  B.store(B.constI64(11), X);
  B.ret(B.load(B.i64(), X));
  PassManager PM;
  PM.addPass(std::make_unique<StackCanaryPass>(0xfeedface));
  PM.run(M);
  Interpreter VM(M);
  ExecResult R = VM.run("fine");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 11u);
}

TEST(StackCanaryTest, MissesTargetedCorruptionBelowCanary) {
  // A store that corrupts a sibling local without touching the canary is
  // invisible to SSP — the gap DOP attacks drive through.
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Victim = B.alloca_(B.i64(), "victim");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  B.store(B.constI64(0), Victim);
  B.store(B.constI64(0x41414141), B.gepConst(Buf, 16)); // exactly victim
  B.ret(B.load(B.i64(), Victim));
  PassManager PM;
  PM.addPass(std::make_unique<StackCanaryPass>(0xdead10cc));
  PM.run(M);
  Interpreter VM(M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << "canary not touched, no trap";
  EXPECT_EQ(R.ReturnValue, 0x41414141u) << "victim silently corrupted";
}

TEST(DeployTest, AllDefensesPreserveProgramBehavior) {
  for (DefenseKind Kind :
       {DefenseKind::None, DefenseKind::StackBaseRandomization,
        DefenseKind::EntryPadding, DefenseKind::StaticPermutation,
        DefenseKind::StackCanary}) {
    Module M("m");
    IRBuilder B(M);
    Function *F = M.createFunction("id42", B.i64(), {});
    B.setInsertPoint(F->createBlock("entry"));
    AllocaInst *X = B.alloca_(B.i64(), "x");
    AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 32), "b");
    B.store(B.constI8(0), Buf);
    B.store(B.constI64(42), X);
    B.ret(B.load(B.i64(), X));
    DeployedDefense D = deployDefense(M, Kind, /*BuildSeed=*/9);
    Interpreter VM(M, nullptr, D.InterpOpts);
    ExecResult R = VM.run("id42");
    ASSERT_TRUE(R.ok()) << defenseKindName(Kind) << ": " << R.Message;
    EXPECT_EQ(R.ReturnValue, 42u) << defenseKindName(Kind);
  }
}

TEST(DeployTest, StackBaseRandomizationMovesAbsoluteAddresses) {
  std::set<uint64_t> Addrs;
  for (uint64_t Build = 0; Build != 8; ++Build) {
    Module M("m");
    buildAddrProbe(M);
    DeployedDefense D =
        deployDefense(M, DefenseKind::StackBaseRandomization, Build);
    Interpreter VM(M, nullptr, D.InterpOpts);
    Addrs.insert(VM.run("addr").ReturnValue);
  }
  EXPECT_GT(Addrs.size(), 4u);
}

TEST(DeployTest, DefenseNames) {
  EXPECT_STREQ(defenseKindName(DefenseKind::None), "none");
  EXPECT_STREQ(defenseKindName(DefenseKind::Smokestack), "smokestack");
  EXPECT_STREQ(defenseKindName(DefenseKind::EntryPadding), "entry-pad");
}
