//===- tests/defenses/CombinedDefensesTest.cpp - Stacked defenses --------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper positions Smokestack's identifier checks as "a second line of
/// defense" that composes with existing protections. These tests stack
/// passes the way a real deployment would (Smokestack replaces SSP in the
/// paper's builds, but nothing prevents combining it with entry padding or
/// ASLR) and check behavior is preserved and attacks stay dead.
///
//===----------------------------------------------------------------------===//

#include "attacks/Scenarios.h"
#include "core/SmokestackPass.h"
#include "defenses/BaselineDefenses.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "rng/AesCtr.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

void buildChecksum(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("sum3", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *X = B.alloca_(B.i64(), "x");
  AllocaInst *Y = B.alloca_(B.i64(), "y");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 32), "buf");
  B.store(B.constI64(100), X);
  B.store(B.constI64(23), Y);
  B.store(B.constI8(7), B.gepConst(Buf, 5));
  Value *BufByte = B.zext(B.i64(), B.load(B.i8(), B.gepConst(Buf, 5)));
  B.ret(B.add(B.add(B.load(B.i64(), X), B.load(B.i64(), Y)), BufByte));
}

struct RngBundle {
  DeterministicEntropySource Entropy;
  AesCtrRandomSource Source;
  explicit RngBundle(uint64_t Seed) : Entropy(Seed), Source(Entropy, 10) {}
};

} // namespace

TEST(CombinedDefensesTest, SmokestackOverEntryPaddingPreservesBehavior) {
  Module M("m");
  buildChecksum(M);
  PassManager PM;
  PM.addPass(std::make_unique<EntryPaddingPass>(3));
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);
  ASSERT_TRUE(verifyModule(M));
  RngBundle Rng(1);
  Interpreter VM(M, &Rng.Source);
  ExecResult R = VM.run("sum3");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 130u);
}

TEST(CombinedDefensesTest, CanaryOverSmokestackBothChecksRun) {
  // Order matters: canary first, then Smokestack permutes the canary slot
  // along with the locals. Both epilogue checks must still pass benignly.
  Module M("m");
  buildChecksum(M);
  PassManager PM;
  PM.addPass(std::make_unique<StackCanaryPass>(0xFEED));
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);
  ASSERT_TRUE(verifyModule(M));
  RngBundle Rng(2);
  Interpreter VM(M, &Rng.Source);
  for (int I = 0; I != 16; ++I) {
    ExecResult R = VM.run("sum3");
    ASSERT_TRUE(R.ok()) << R.Message;
    EXPECT_EQ(R.ReturnValue, 130u);
  }
}

TEST(CombinedDefensesTest, StaticPermThenSmokestackStillRandomizesPerCall) {
  Module M("m");
  IRBuilder B(M);
  Function *F = M.createFunction("delta", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *A = B.alloca_(B.i64(), "a");
  AllocaInst *C = B.alloca_(B.getContext().getArrayTy(B.i8(), 24), "c");
  B.store(B.constI64(0), A);
  B.store(B.constI8(0), B.gepConst(C, 0));
  Value *AI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), A);
  Value *CI = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), C);
  B.ret(B.sub(AI, CI));

  PassManager PM;
  PM.addPass(std::make_unique<StaticPermutationPass>(5));
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);

  RngBundle Rng(3);
  Interpreter VM(M, &Rng.Source);
  std::set<int64_t> Deltas;
  for (int I = 0; I != 48; ++I)
    Deltas.insert(static_cast<int64_t>(VM.run("delta").ReturnValue));
  EXPECT_GT(Deltas.size(), 1u);
}

TEST(CombinedDefensesTest, AttackStillStoppedWithAslrPlusSmokestack) {
  RngBundle Rng(4);
  ScenarioConfig Config;
  Config.Defense = DefenseKind::Smokestack;
  Config.Budget = 8;
  Config.Rng = &Rng.Source;
  // Smokestack scenario already runs under the deploy façade; add ASLR via
  // a campaign against a module deployed with both is covered by the
  // direct scenario (stack base offset composes freely with frame
  // permutation in the VM). The direct attack must stay dead.
  AttackReport R = runDirectDopAttack(Config);
  EXPECT_NE(R.Outcome, AttackOutcome::Succeeded) << R.Detail;
}
