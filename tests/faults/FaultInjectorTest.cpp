//===- tests/faults/FaultInjectorTest.cpp - Fault injector tests ----------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "faults/FaultInjector.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace smokestack;

namespace {

TEST(FaultInjectorTest, SiteNamesAreStable) {
  EXPECT_STREQ(faultSiteName(FaultSite::RdRandStep), "rdrand-step");
  EXPECT_STREQ(faultSiteName(FaultSite::RdRandDeath), "rdrand-death");
  EXPECT_STREQ(faultSiteName(FaultSite::EntropyFill), "entropy-fill");
  EXPECT_STREQ(faultSiteName(FaultSite::AesNiPresence), "aesni-presence");
  EXPECT_STREQ(faultSiteName(FaultSite::RekeyEntropy), "rekey-entropy");
}

TEST(FaultInjectorTest, NoPlanNoFailures) {
  FaultPlan Plan; // all probabilities zero
  Plan.Seed = 123;
  FaultInjector Inj(Plan);
  for (unsigned I = 0; I != 1000; ++I)
    EXPECT_FALSE(Inj.shouldFail(FaultSite::RdRandStep));
  EXPECT_EQ(Inj.probeCount(FaultSite::RdRandStep), 1000u);
  EXPECT_EQ(Inj.injectedProbes(FaultSite::RdRandStep), 0u);
  EXPECT_EQ(Inj.totalInjectedEvents(), 0u);
}

TEST(FaultInjectorTest, SameSeedReplaysBitIdentically) {
  FaultPlan Plan;
  Plan.Seed = 99;
  Plan.site(FaultSite::RdRandStep) = {0.3, 2, 0};
  Plan.site(FaultSite::RekeyEntropy) = {0.1, 1, 0};
  Plan.site(FaultSite::EntropyFill) = {0.5, 3, 0};

  FaultInjector A(Plan);
  FaultInjector B(Plan);
  for (unsigned I = 0; I != 5000; ++I) {
    FaultSite Site = static_cast<FaultSite>(I % NumFaultSites);
    EXPECT_EQ(A.shouldFail(Site), B.shouldFail(Site)) << "probe " << I;
  }
  EXPECT_EQ(A.totalInjectedProbes(), B.totalInjectedProbes());
  EXPECT_EQ(A.totalInjectedEvents(), B.totalInjectedEvents());
}

TEST(FaultInjectorTest, SitesHaveIndependentStreams) {
  // The decision sequence at one site must not depend on how often other
  // sites are probed in between (otherwise two subsystems sharing one
  // injector would perturb each other's faults).
  FaultPlan Plan;
  Plan.Seed = 7;
  Plan.site(FaultSite::RdRandStep) = {0.5, 1, 0};
  Plan.site(FaultSite::RekeyEntropy) = {0.5, 1, 0};

  FaultInjector Alone(Plan);
  FaultInjector Interleaved(Plan);
  std::vector<bool> A, B;
  for (unsigned I = 0; I != 500; ++I)
    A.push_back(Alone.shouldFail(FaultSite::RdRandStep));
  for (unsigned I = 0; I != 500; ++I) {
    B.push_back(Interleaved.shouldFail(FaultSite::RdRandStep));
    (void)Interleaved.shouldFail(FaultSite::RekeyEntropy);
    (void)Interleaved.shouldFail(FaultSite::AesNiPresence);
  }
  EXPECT_EQ(A, B);
}

TEST(FaultInjectorTest, StreaksFailConsecutivelyAndCountOneEvent) {
  FaultPlan Plan;
  Plan.Seed = 1;
  Plan.site(FaultSite::RdRandStep) = {1.0, 4, 0};
  FaultInjector Inj(Plan);
  for (unsigned I = 0; I != 12; ++I)
    EXPECT_TRUE(Inj.shouldFail(FaultSite::RdRandStep));
  // Probability 1.0 restarts a streak the moment the previous one drains:
  // 12 failed probes are 3 events of 4 probes each.
  EXPECT_EQ(Inj.injectedProbes(FaultSite::RdRandStep), 12u);
  EXPECT_EQ(Inj.injectedEvents(FaultSite::RdRandStep), 3u);
}

TEST(FaultInjectorTest, FailFromProbeIsPermanentAndPerProbeAccounted) {
  FaultPlan Plan;
  Plan.Seed = 5;
  Plan.site(FaultSite::RdRandDeath) = {0.0, 1, 5};
  FaultInjector Inj(Plan);
  for (unsigned I = 1; I <= 4; ++I)
    EXPECT_FALSE(Inj.shouldFail(FaultSite::RdRandDeath)) << "probe " << I;
  for (unsigned I = 5; I <= 20; ++I)
    EXPECT_TRUE(Inj.shouldFail(FaultSite::RdRandDeath)) << "probe " << I;
  // Each post-death probe is its own event so the books keep growing.
  EXPECT_EQ(Inj.injectedEvents(FaultSite::RdRandDeath), 16u);
  EXPECT_EQ(Inj.probeCount(FaultSite::RdRandDeath), 20u);
}

TEST(FaultScopeTest, ProbeIsInertWithoutScope) {
  EXPECT_FALSE(faultInjectionActive());
  EXPECT_FALSE(faultProbe(FaultSite::RdRandStep));
}

TEST(FaultScopeTest, ScopesNestAndRestore) {
  FaultPlan Always;
  Always.Seed = 2;
  Always.site(FaultSite::EntropyFill) = {1.0, 1, 0};
  FaultPlan Never;
  Never.Seed = 3;

  FaultInjector Outer(Always);
  FaultInjector Inner(Never);
  EXPECT_FALSE(faultInjectionActive());
  {
    FaultScope S1(Outer);
    EXPECT_TRUE(faultInjectionActive());
    EXPECT_TRUE(faultProbe(FaultSite::EntropyFill));
    {
      FaultScope S2(Inner);
      EXPECT_FALSE(faultProbe(FaultSite::EntropyFill));
    }
    // The outer injector is restored when the inner scope dies.
    EXPECT_TRUE(faultProbe(FaultSite::EntropyFill));
  }
  EXPECT_FALSE(faultInjectionActive());
  EXPECT_EQ(Outer.probeCount(FaultSite::EntropyFill), 2u);
  EXPECT_EQ(Inner.probeCount(FaultSite::EntropyFill), 1u);
}

TEST(FaultScopeTest, ScopeIsThreadLocal) {
  // A FaultScope on one thread must not leak into another: each pool
  // worker installs its own per-request injector.
  FaultPlan Always;
  Always.Seed = 2;
  Always.site(FaultSite::EntropyFill) = {1.0, 1, 0};
  FaultInjector Inj(Always);
  FaultScope Scope(Inj);
  EXPECT_TRUE(faultProbe(FaultSite::EntropyFill));

  bool OtherThreadActive = true;
  bool OtherThreadProbe = true;
  std::thread([&] {
    OtherThreadActive = faultInjectionActive();
    OtherThreadProbe = faultProbe(FaultSite::EntropyFill);
  }).join();
  EXPECT_FALSE(OtherThreadActive);
  EXPECT_FALSE(OtherThreadProbe);
}

TEST(FaultScopeTest, ProcessScopeReachesEveryThread) {
  // ProcessFaultScope is the whole-process fallback slot: visible from
  // threads that installed nothing, shadowed by a thread-local scope.
  FaultPlan Always;
  Always.Seed = 2;
  Always.site(FaultSite::EntropyFill) = {1.0, 1, 0};
  FaultPlan Never;
  Never.Seed = 3;

  FaultInjector Global(Always);
  FaultInjector Local(Never);
  ProcessFaultScope Process(Global);
  EXPECT_TRUE(faultInjectionActive());
  EXPECT_TRUE(faultProbe(FaultSite::EntropyFill));

  bool SeenFromThread = false;
  std::thread([&] { SeenFromThread = faultProbe(FaultSite::EntropyFill); })
      .join();
  EXPECT_TRUE(SeenFromThread);

  {
    FaultScope Shadow(Local);
    EXPECT_FALSE(faultProbe(FaultSite::EntropyFill))
        << "the thread-local slot shadows the process slot";
  }
  EXPECT_TRUE(faultProbe(FaultSite::EntropyFill));

  // Concurrent probes against the shared injector are serialized: the
  // books stay exact under contention.
  uint64_t Before = Global.probeCount(FaultSite::EntropyFill);
  constexpr unsigned NumThreads = 8;
  constexpr unsigned PerThread = 5000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([] {
      for (unsigned I = 0; I != PerThread; ++I)
        (void)faultProbe(FaultSite::EntropyFill);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Global.probeCount(FaultSite::EntropyFill),
            Before + NumThreads * PerThread);
}

} // namespace
