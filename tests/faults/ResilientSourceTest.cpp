//===- tests/faults/ResilientSourceTest.cpp - Resilient RNG tests ---------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// ResilientRandomSource contract tests: fallback ordering, retry/backoff,
// reprobe recovery, both fail policies, worst-of-batch fill status, and the
// decorator's accounting. Plus scheme-level fault-plan replay: every
// randomness scheme must produce a bit-identical draw/status sequence when
// the same plan is replayed, and batched draws must equal serial draws
// under the same plan (the fault probes are consumed in the same order).
//
//===----------------------------------------------------------------------===//

#include "rng/Resilient.h"

#include "faults/FaultInjector.h"
#include "rng/AesCtr.h"
#include "rng/Entropy.h"
#include "rng/Pseudo.h"
#include "rng/RdRand.h"

#include "gtest/gtest.h"

#include <array>
#include <memory>
#include <vector>

using namespace smokestack;

namespace {

/// Test double whose per-call DrawStatus follows a cyclic script.
/// Successful draws count 1, 2, 3, ... so tests can tell sources apart.
class ScriptedSource : public RandomSource {
public:
  ScriptedSource(std::vector<DrawStatus> Script, const char *Name,
                 uint64_t ValueBase = 0,
                 SecurityLevel Level = SecurityLevel::High)
      : Script(std::move(Script)), Label(Name), Counter(ValueBase),
        Level(Level) {}

  uint64_t next() override {
    ++Calls;
    DrawStatus S =
        Script.empty() ? DrawStatus::Ok : Script[Pos++ % Script.size()];
    setDrawStatus(S);
    return S == DrawStatus::Failed ? 0 : ++Counter;
  }
  const char *name() const override { return Label; }
  SecurityLevel securityLevel() const override { return Level; }

  void setScript(std::vector<DrawStatus> NewScript) {
    Script = std::move(NewScript);
    Pos = 0;
  }
  uint64_t calls() const { return Calls; }

private:
  std::vector<DrawStatus> Script;
  const char *Label;
  size_t Pos = 0;
  uint64_t Counter;
  uint64_t Calls = 0;
  SecurityLevel Level;
};

ResilientRandomSource::Options quickOpts() {
  ResilientRandomSource::Options O;
  O.RetriesPerSource = 1;
  O.BackoffBase = 0;
  O.ReprobeInterval = 1;
  return O;
}

TEST(ResilientSourceTest, HealthyPrimaryServesEveryDraw) {
  ScriptedSource Primary({DrawStatus::Ok}, "primary");
  ScriptedSource Backup({DrawStatus::Ok}, "backup", 1000);
  RandomSource *Chain[] = {&Primary, &Backup};
  ResilientRandomSource R({Chain, 2}, quickOpts());

  for (uint64_t I = 1; I <= 10; ++I)
    EXPECT_EQ(R.next(), I);
  EXPECT_EQ(R.health(), ResilientRandomSource::Health::Healthy);
  EXPECT_EQ(R.activeIndex(), 0u);
  EXPECT_EQ(R.drawsServed(), 10u);
  EXPECT_EQ(R.degradedDraws(), 0u);
  EXPECT_EQ(R.fallbackDraws(), 0u);
  EXPECT_EQ(Backup.calls(), 0u);
  EXPECT_STREQ(R.name(), "resilient[primary]");
}

TEST(ResilientSourceTest, FailoverFollowsChainOrder) {
  ScriptedSource Primary({DrawStatus::Failed}, "primary");
  ScriptedSource Backup({DrawStatus::Ok}, "backup", 1000);
  RandomSource *Chain[] = {&Primary, &Backup};
  ResilientRandomSource::Options O = quickOpts();
  O.ReprobeInterval = 1024; // keep the failover sticky for this test
  ResilientRandomSource R({Chain, 2}, O);

  for (uint64_t I = 1; I <= 5; ++I)
    EXPECT_EQ(R.next(), 1000 + I);
  EXPECT_EQ(R.health(), ResilientRandomSource::Health::Degraded);
  EXPECT_EQ(R.activeIndex(), 1u);
  EXPECT_EQ(R.failovers(), 1u);
  EXPECT_EQ(R.fallbackDraws(), 5u);
  EXPECT_EQ(R.degradedDraws(), 5u);
  // Sticky: the dead primary was only probed on the draw that failed over.
  EXPECT_EQ(Primary.calls(), 1u);
  EXPECT_STREQ(R.name(), "resilient[backup]");
}

TEST(ResilientSourceTest, RetriesRecoverTransientFailures) {
  // Every draw fails once and succeeds on the retry: the primary keeps
  // serving, at the cost of one retry (plus backoff) per draw.
  ScriptedSource Primary({DrawStatus::Failed, DrawStatus::Ok}, "primary");
  RandomSource *Chain[] = {&Primary};
  ResilientRandomSource::Options O;
  O.RetriesPerSource = 2;
  O.BackoffBase = 4;
  ResilientRandomSource R({Chain, 1}, O);

  for (uint64_t I = 1; I <= 8; ++I)
    EXPECT_EQ(R.next(), I);
  EXPECT_EQ(R.retriesUsed(), 8u);
  EXPECT_GT(R.backoffSpins(), 0u);
  EXPECT_EQ(R.failovers(), 0u);
  EXPECT_EQ(R.fallbackDraws(), 0u);
  EXPECT_EQ(Primary.calls(), 16u);
}

TEST(ResilientSourceTest, ReprobeReadoptsRecoveredPrimary) {
  ScriptedSource Primary({DrawStatus::Failed}, "primary");
  ScriptedSource Backup({DrawStatus::Ok}, "backup", 1000);
  RandomSource *Chain[] = {&Primary, &Backup};
  ResilientRandomSource::Options O = quickOpts();
  O.ReprobeInterval = 4;
  ResilientRandomSource R({Chain, 2}, O);

  (void)R.next(); // draw 1: fail over to backup
  (void)R.next(); // draws 2-3: sticky on backup, primary not probed
  (void)R.next();
  EXPECT_EQ(R.activeIndex(), 1u);
  EXPECT_EQ(Primary.calls(), 1u);

  Primary.setScript({DrawStatus::Ok}); // the DRNG comes back
  uint64_t V = R.next();               // draw 4: reprobe from the top
  EXPECT_EQ(V, 1u);                    // served by the recovered primary
  EXPECT_EQ(R.activeIndex(), 0u);
  EXPECT_EQ(R.recoveries(), 1u);
  EXPECT_EQ(R.health(), ResilientRandomSource::Health::Healthy);
}

TEST(ResilientSourceTest, FailClosedPolicyFailsTheDraw) {
  ScriptedSource A({DrawStatus::Failed}, "a");
  ScriptedSource B({DrawStatus::Failed}, "b");
  RandomSource *Chain[] = {&A, &B};
  ResilientRandomSource R({Chain, 2}, quickOpts()); // FailClosed default

  uint64_t Out = 0xdead;
  EXPECT_FALSE(R.tryNext(Out));
  EXPECT_EQ(R.lastDrawStatus(), DrawStatus::Failed);
  EXPECT_EQ(R.health(), ResilientRandomSource::Health::Failed);
  EXPECT_EQ(R.failClosedDraws(), 1u);
  EXPECT_EQ(R.emergencyDraws(), 0u);
  EXPECT_EQ(R.next(), 0u);
  EXPECT_EQ(R.lastDrawStatus(), DrawStatus::Failed);
}

TEST(ResilientSourceTest, DegradePolicyServesAccountedEmergencyDraws) {
  ScriptedSource A({DrawStatus::Failed}, "a");
  RandomSource *Chain[] = {&A};
  ResilientRandomSource::Options O = quickOpts();
  O.Policy = ResilientRandomSource::FailPolicy::Degrade;
  ResilientRandomSource R({Chain, 1}, O);

  uint64_t Out = 0;
  EXPECT_TRUE(R.tryNext(Out));
  EXPECT_EQ(R.lastDrawStatus(), DrawStatus::Degraded);
  EXPECT_EQ(R.emergencyDraws(), 1u);
  EXPECT_EQ(R.degradedDraws(), 1u);
  EXPECT_EQ(R.failClosedDraws(), 0u);
  // Emergency draws replay deterministically (fixed-seed stream).
  ScriptedSource A2({DrawStatus::Failed}, "a");
  RandomSource *Chain2[] = {&A2};
  ResilientRandomSource R2({Chain2, 1}, O);
  uint64_t Out2 = 0;
  EXPECT_TRUE(R2.tryNext(Out2));
  EXPECT_EQ(Out, Out2);
}

TEST(ResilientSourceTest, FillReportsWorstStatusOfBatch) {
  ScriptedSource A({DrawStatus::Ok, DrawStatus::Degraded, DrawStatus::Ok},
                   "a");
  RandomSource *Chain[] = {&A};
  ResilientRandomSource R({Chain, 1}, quickOpts());
  uint64_t Words[3];
  R.fill(Words);
  EXPECT_EQ(R.lastDrawStatus(), DrawStatus::Degraded);

  ScriptedSource B({DrawStatus::Ok, DrawStatus::Failed, DrawStatus::Ok}, "b");
  RandomSource *Chain2[] = {&B};
  ResilientRandomSource R2({Chain2, 1}, quickOpts());
  R2.fill(Words);
  EXPECT_EQ(R2.lastDrawStatus(), DrawStatus::Failed)
      << "one failed word must poison the whole refill";
}

TEST(ResilientSourceTest, DelegatesDisclosureSurfaceToActiveSource) {
  DeterministicEntropySource E(11);
  PseudoRandomSource Pseudo(E);
  RandomSource *Chain[] = {&Pseudo};
  ResilientRandomSource R({Chain, 1}, quickOpts());
  EXPECT_EQ(R.securityLevel(), SecurityLevel::None);
  EXPECT_EQ(R.disclosableState().size(), Pseudo.disclosableState().size());
  EXPECT_EQ(R.mutableDisclosableState().data(),
            Pseudo.mutableDisclosableState().data());
}

TEST(ResilientSourceTest, RealChainOrderingRdRandThenAesThenFailClosed) {
  // Pin the production fallback order: RDRAND -> AES-CTR -> fail closed.
  // Stage 1: DRNG dead from the first probe, AES healthy -> AES serves.
  {
    FaultPlan Plan;
    Plan.Seed = 21;
    Plan.site(FaultSite::RdRandDeath) = {0.0, 1, 1};
    FaultInjector Inj(Plan);
    FaultScope Scope(Inj);

    DeterministicEntropySource RdE(1), AesE(2);
    RdRandSource Primary(RdE, /*ForceFallback=*/true);
    AesCtrRandomSource Aes(AesE, 10, 1024);
    RandomSource *Chain[] = {&Primary, &Aes};
    ResilientRandomSource R({Chain, 2}, quickOpts());

    for (unsigned I = 0; I != 32; ++I) {
      uint64_t Out = 0;
      EXPECT_TRUE(R.tryNext(Out));
    }
    EXPECT_EQ(R.fallbackDraws(), 32u);
    EXPECT_EQ(R.failClosedDraws(), 0u);
    EXPECT_STREQ(R.name(), "resilient[AES-10]");
    EXPECT_EQ(Inj.injectedEvents(FaultSite::RdRandDeath),
              R.fallbackDraws());
  }
  // Stage 2: DRNG dead and AES never keys -> the chain fails closed.
  {
    FaultPlan Plan;
    Plan.Seed = 22;
    Plan.site(FaultSite::RdRandDeath) = {0.0, 1, 1};
    Plan.site(FaultSite::RekeyEntropy) = {1.0, 1, 0};
    FaultInjector Inj(Plan);
    FaultScope Scope(Inj);

    DeterministicEntropySource RdE(1), AesE(2);
    RdRandSource Primary(RdE, /*ForceFallback=*/true);
    AesCtrRandomSource Aes(AesE, 10, 1024); // initial keying fails
    RandomSource *Chain[] = {&Primary, &Aes};
    ResilientRandomSource R({Chain, 2}, quickOpts());

    uint64_t Out = 0;
    EXPECT_FALSE(R.tryNext(Out));
    EXPECT_EQ(R.lastDrawStatus(), DrawStatus::Failed);
    EXPECT_EQ(R.failClosedDraws(), 1u);
    EXPECT_GT(Aes.unkeyedDrawFailures(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Fault-plan replay across the four schemes
//===----------------------------------------------------------------------===//

enum class Scheme { Pseudo, Aes1, Aes10, RdRand };

std::unique_ptr<RandomSource> makeScheme(Scheme Which,
                                         EntropySource &Entropy) {
  switch (Which) {
  case Scheme::Pseudo:
    return std::make_unique<PseudoRandomSource>(Entropy);
  case Scheme::Aes1:
    return std::make_unique<AesCtrRandomSource>(Entropy, 1, 16);
  case Scheme::Aes10:
    return std::make_unique<AesCtrRandomSource>(Entropy, 10, 16);
  case Scheme::RdRand:
    return std::make_unique<RdRandSource>(Entropy, /*ForceFallback=*/true);
  }
  return nullptr;
}

FaultPlan stressPlan(uint64_t Seed) {
  FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.site(FaultSite::RdRandStep) = {0.3, 2, 0};
  Plan.site(FaultSite::RdRandDeath) = {0.0, 1, 150};
  Plan.site(FaultSite::EntropyFill) = {0.2, 1, 0};
  Plan.site(FaultSite::AesNiPresence) = {0.1, 1, 0};
  Plan.site(FaultSite::RekeyEntropy) = {0.4, 1, 0};
  return Plan;
}

/// N draws under the plan plus the injector's books afterwards. Batch 1
/// goes through next(); larger batches through the buffered path.
struct SeqResult {
  std::vector<std::pair<uint64_t, int>> Draws;
  std::array<uint64_t, NumFaultSites> Probes{};
  std::array<uint64_t, NumFaultSites> Injected{};
  std::array<uint64_t, NumFaultSites> Events{};
};

SeqResult runSequence(Scheme Which, const FaultPlan &Plan, unsigned N,
                      unsigned Batch = 1) {
  FaultInjector Inj(Plan);
  FaultScope Scope(Inj);
  DeterministicEntropySource Entropy(0xabc);
  std::unique_ptr<RandomSource> Src = makeScheme(Which, Entropy);
  Src->setBatchSize(Batch);
  SeqResult R;
  for (unsigned I = 0; I != N; ++I) {
    uint64_t V = Batch <= 1 ? Src->next() : Src->nextBuffered();
    R.Draws.emplace_back(V, static_cast<int>(Src->lastDrawStatus()));
  }
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    FaultSite Site = static_cast<FaultSite>(S);
    R.Probes[S] = Inj.probeCount(Site);
    R.Injected[S] = Inj.injectedProbes(Site);
    R.Events[S] = Inj.injectedEvents(Site);
  }
  return R;
}

class SchemeReplayTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeReplayTest, SamePlanReplaysBitIdentically) {
  FaultPlan Plan = stressPlan(77);
  SeqResult A = runSequence(GetParam(), Plan, 200);
  SeqResult B = runSequence(GetParam(), Plan, 200);
  ASSERT_EQ(A.Draws.size(), B.Draws.size());
  for (size_t I = 0; I != A.Draws.size(); ++I) {
    EXPECT_EQ(A.Draws[I].first, B.Draws[I].first)
        << "value diverged at draw " << I;
    EXPECT_EQ(A.Draws[I].second, B.Draws[I].second)
        << "status diverged at draw " << I;
  }
  EXPECT_EQ(A.Probes, B.Probes);
  EXPECT_EQ(A.Events, B.Events);
}

TEST_P(SchemeReplayTest, BatchingPreservesFaultProbeConsumption) {
  // Batching may reorder cipher evaluation (the AES fill() drops the
  // serial feedback chain within a group by design — see
  // RandomFillTest.FirstBufferedWordEqualsNext) but it must consume the
  // fault-probe streams exactly as 96 serial draws would: same probes,
  // same injected probes, same events per site. Otherwise a fault plan
  // tuned against the serial path would silently miss the batched one.
  FaultPlan Plan = stressPlan(31);
  SeqResult Serial = runSequence(GetParam(), Plan, 96, 1);
  SeqResult Batched = runSequence(GetParam(), Plan, 96, 16);
  EXPECT_EQ(Serial.Probes, Batched.Probes);
  EXPECT_EQ(Serial.Injected, Batched.Injected);
  EXPECT_EQ(Serial.Events, Batched.Events);

  // Schemes without a fill() override (pseudo, RDRAND) inherit the
  // default serial loop and must also match word for word.
  if (GetParam() == Scheme::Pseudo || GetParam() == Scheme::RdRand) {
    ASSERT_EQ(Batched.Draws.size(), Serial.Draws.size());
    for (size_t I = 0; I != Serial.Draws.size(); ++I)
      EXPECT_EQ(Batched.Draws[I].first, Serial.Draws[I].first)
          << "diverged at draw " << I;
  }
}

TEST(FaultPlanDivergenceTest, AesDrawStreamsDivergeAcrossPlanSeeds) {
  // AES-CTR's draw path probes rekey entropy, the entropy source, and
  // AES-NI presence, so which draws degrade — and through the deferred
  // rekey, the values themselves — depends on the plan seed.
  SeqResult A = runSequence(Scheme::Aes10, stressPlan(77), 64);
  SeqResult B = runSequence(Scheme::Aes10, stressPlan(78), 64);
  EXPECT_NE(A.Draws, B.Draws) << "plans with different seeds must differ";
}

TEST(FaultPlanDivergenceTest, RdRandDegradesAtSeedDependentDraws) {
  // A CF=0 streak at least as long as the retry budget fails the whole
  // primary draw, so with streaks of RetryLimit the *positions* of the
  // degraded emergency draws follow the plan seed.
  FaultPlan P1, P2;
  P1.Seed = 77;
  P1.site(FaultSite::RdRandStep) = {0.2, RdRandSource::RetryLimit, 0};
  P2 = P1;
  P2.Seed = 78;
  SeqResult A = runSequence(Scheme::RdRand, P1, 128);
  SeqResult B = runSequence(Scheme::RdRand, P2, 128);
  EXPECT_NE(A.Draws, B.Draws);
  EXPECT_GT(A.Events[static_cast<unsigned>(FaultSite::RdRandStep)], 0u);
  EXPECT_GT(B.Events[static_cast<unsigned>(FaultSite::RdRandStep)], 0u);
}

TEST(FaultPlanDivergenceTest, PseudoIsFaultTransparentAfterSeeding) {
  // pseudo's only fault surface is the seeding fill; the xorshift stream
  // itself never touches entropy again. Under a plan that spares
  // EntropyFill, two different seeds leave the stream bit-identical —
  // which is exactly why `pseudo` needs no resilience decorator (and why
  // it stays disclosure-unsafe: nothing external ever perturbs it).
  FaultPlan P1;
  P1.Seed = 77;
  P1.site(FaultSite::RdRandStep) = {0.5, 2, 0};
  P1.site(FaultSite::RekeyEntropy) = {0.5, 1, 0};
  FaultPlan P2 = P1;
  P2.Seed = 78;
  SeqResult A = runSequence(Scheme::Pseudo, P1, 64);
  SeqResult B = runSequence(Scheme::Pseudo, P2, 64);
  EXPECT_EQ(A.Draws, B.Draws);
  EXPECT_EQ(A.Probes, B.Probes);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeReplayTest,
                         ::testing::Values(Scheme::Pseudo, Scheme::Aes1,
                                           Scheme::Aes10, Scheme::RdRand),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case Scheme::Pseudo:
                             return "pseudo";
                           case Scheme::Aes1:
                             return "aes1";
                           case Scheme::Aes10:
                             return "aes10";
                           case Scheme::RdRand:
                             return "rdrand";
                           }
                           return "unknown";
                         });

} // namespace
