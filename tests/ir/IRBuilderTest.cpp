//===- tests/ir/IRBuilderTest.cpp - IR construction tests ----------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "ir/Verifier.h"
#include "support/RawStream.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

/// Builds:  i32 sumTo(i32 n) { s=0; for(i=0;i<n;i++) s+=i; return s; }
/// with allocas for s and i (clang -O0 style).
Function *buildSumTo(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("sumTo", B.i32(), {B.i32()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Cond = F->createBlock("cond");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertPoint(Entry);
  AllocaInst *S = B.alloca_(B.i32(), "s");
  AllocaInst *I = B.alloca_(B.i32(), "i");
  B.store(B.constI32(0), S);
  B.store(B.constI32(0), I);
  B.br(Cond);

  B.setInsertPoint(Cond);
  Value *IV = B.load(B.i32(), I);
  Value *Cmp = B.icmp(ICmpInst::Predicate::SLT, IV, F->getArg(0));
  B.condBr(Cmp, Body, Exit);

  B.setInsertPoint(Body);
  Value *SV = B.load(B.i32(), S);
  Value *IV2 = B.load(B.i32(), I);
  B.store(B.add(SV, IV2), S);
  B.store(B.add(IV2, B.constI32(1)), I);
  B.br(Cond);

  B.setInsertPoint(Exit);
  B.ret(B.load(B.i32(), S));
  return F;
}

} // namespace

TEST(IRBuilderTest, StructureOfBuiltFunction) {
  Module M("test");
  Function *F = buildSumTo(M);
  EXPECT_EQ(F->getNumBlocks(), 4u);
  EXPECT_EQ(F->getNumArgs(), 1u);
  EXPECT_EQ(F->getEntryBlock()->getName(), "entry");
  EXPECT_NE(F->getEntryBlock()->getTerminator(), nullptr);
  EXPECT_EQ(F->getStaticAllocas().size(), 2u);
  EXPECT_TRUE(F->getVLAAllocas().empty());
}

TEST(IRBuilderTest, BuiltFunctionVerifies) {
  Module M("test");
  buildSumTo(M);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, &Errors)) << (Errors.empty() ? "" : Errors[0]);
}

TEST(IRBuilderTest, ConstantInterning) {
  Module M("test");
  IRBuilder B(M);
  EXPECT_EQ(B.constI32(7), B.constI32(7));
  EXPECT_NE(B.constI32(7), B.constI32(8));
  EXPECT_NE(B.constI32(7), B.constI64(7)) << "interning is per type";
}

TEST(IRBuilderTest, VLAAlloca) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("vla", B.voidTy(), {B.i64()});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *VLA = B.allocaVLA(B.i8(), F->getArg(0), "buf");
  B.ret();
  EXPECT_TRUE(VLA->isVLA());
  EXPECT_EQ(VLA->getCount(), F->getArg(0));
  EXPECT_TRUE(F->getStaticAllocas().empty())
      << "VLAs are excluded from the static (permutable) allocation set";
  EXPECT_EQ(F->getVLAAllocas().size(), 1u);
}

TEST(IRBuilderTest, AllocaAlignmentOverride) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Natural = B.alloca_(B.i32(), "nat");
  AllocaInst *Over = B.alloca_(B.i32(), "over", /*AlignOverride=*/16);
  B.ret();
  EXPECT_EQ(Natural->getAlign(), 4u);
  EXPECT_EQ(Over->getAlign(), 16u);
}

TEST(IRBuilderTest, FunctionAttributes) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {});
  EXPECT_FALSE(F->getAttribute("pbox.table").has_value());
  F->setAttribute("pbox.table", 42);
  ASSERT_TRUE(F->getAttribute("pbox.table").has_value());
  EXPECT_EQ(*F->getAttribute("pbox.table"), 42u);
}

TEST(IRBuilderTest, PrintingContainsStructure) {
  Module M("test");
  buildSumTo(M);
  std::string Text;
  RawStringOStream OS(Text);
  M.print(OS);
  EXPECT_NE(Text.find("define i32 @sumTo(i32 %arg0)"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("alloca i32"), std::string::npos);
  EXPECT_NE(Text.find("icmp slt"), std::string::npos);
  EXPECT_NE(Text.find("br i8"), std::string::npos);
  EXPECT_NE(Text.find("ret i32"), std::string::npos);
}

TEST(IRBuilderTest, GlobalsAndDeclarations) {
  Module M("test");
  IRBuilder B(M);
  GlobalVariable *G = M.createGlobal(
      "table", B.getContext().getArrayTy(B.i8(), 64), {1, 2, 3}, true);
  EXPECT_TRUE(G->isReadOnly());
  EXPECT_EQ(M.getGlobal("table"), G);
  EXPECT_EQ(M.getGlobal("missing"), nullptr);

  Function *Decl =
      M.getOrInsertDeclaration("memcpy", B.ptr(), {B.ptr(), B.ptr(), B.i64()});
  EXPECT_TRUE(Decl->isDeclaration());
  EXPECT_EQ(M.getOrInsertDeclaration("memcpy", B.ptr(), {}), Decl)
      << "second insertion returns the same declaration";
}

TEST(IRBuilderTest, ReplaceUsesOfWith) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.i32(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Value *A = B.add(B.constI32(1), B.constI32(2));
  auto *Sum = static_cast<Instruction *>(B.add(A, A));
  B.ret(Sum);
  Value *C = B.constI32(9);
  Sum->replaceUsesOfWith(A, C);
  EXPECT_EQ(Sum->getOperand(0), C);
  EXPECT_EQ(Sum->getOperand(1), C);
}
