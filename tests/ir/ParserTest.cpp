//===- tests/ir/ParserTest.cpp - Textual IR parser tests -----------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "core/SmokestackPass.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "rng/AesCtr.h"
#include "support/RawStream.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

std::string printed(Module &M) {
  std::string Text;
  RawStringOStream OS(Text);
  M.print(OS);
  return Text;
}

/// Parses or fails the test.
std::unique_ptr<Module> parseOrDie(const std::string &Text) {
  ParseResult R = parseModule(Text);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

/// sumTo builder used for semantic round-trip checks.
void buildSumTo(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("sumTo", B.i64(), {B.i64()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Cond = F->createBlock("cond");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  AllocaInst *S = B.alloca_(B.i64(), "s");
  AllocaInst *I = B.alloca_(B.i64(), "i");
  B.store(B.constI64(0), S);
  B.store(B.constI64(0), I);
  B.br(Cond);
  B.setInsertPoint(Cond);
  B.condBr(B.icmp(ICmpInst::Predicate::SLT, B.load(B.i64(), I),
                  F->getArg(0)),
           Body, Exit);
  B.setInsertPoint(Body);
  B.store(B.add(B.load(B.i64(), S), B.load(B.i64(), I)), S);
  B.store(B.add(B.load(B.i64(), I), B.constI64(1)), I);
  B.br(Cond);
  B.setInsertPoint(Exit);
  B.ret(B.load(B.i64(), S));
}

} // namespace

TEST(ParserTest, MinimalFunction) {
  auto M = parseOrDie("define i64 @f(i64 %x) {\n"
                      "entry:\n"
                      "  %y = add i64 %x, i64 5\n"
                      "  ret i64 %y\n"
                      "}\n");
  ASSERT_TRUE(verifyModule(*M));
  Interpreter VM(*M);
  EXPECT_EQ(VM.run("f", {37}).ReturnValue, 42u);
}

TEST(ParserTest, GlobalsZeroinitBytesAndConstant) {
  auto M = parseOrDie("@zero = global i64 zeroinit\n"
                      "@blob = global [4 x i8] bytes [ 1 2 3 ]\n"
                      "@ro = constant i32 bytes [ 255 0 0 0 ]\n");
  ASSERT_NE(M->getGlobal("zero"), nullptr);
  EXPECT_TRUE(M->getGlobal("zero")->getInitializer().empty());
  EXPECT_EQ(M->getGlobal("blob")->getInitializer().size(), 3u);
  EXPECT_TRUE(M->getGlobal("ro")->isReadOnly());
  EXPECT_FALSE(M->getGlobal("blob")->isReadOnly());
}

TEST(ParserTest, DeclarationsWithParamsAndVarArgs) {
  auto M = parseOrDie("declare i64 @strlen(ptr)\n"
                      "declare i64 @snprintf(ptr, i64, ptr, ...)\n"
                      "declare void @abort(...)\n");
  Function *Strlen = M->getFunction("strlen");
  ASSERT_NE(Strlen, nullptr);
  EXPECT_TRUE(Strlen->isDeclaration());
  EXPECT_EQ(Strlen->getNumArgs(), 1u);
  EXPECT_FALSE(Strlen->isVarArg());
  EXPECT_TRUE(M->getFunction("snprintf")->isVarArg());
  EXPECT_EQ(M->getFunction("snprintf")->getNumArgs(), 3u);
  EXPECT_TRUE(M->getFunction("abort")->isVarArg());
}

TEST(ParserTest, ControlFlowAndForwardBlockReferences) {
  auto M = parseOrDie("define i64 @abs(i64 %x) {\n"
                      "entry:\n"
                      "  %neg = icmp slt i64 %x, i64 0\n"
                      "  br i8 %neg, label %flip, label %keep\n"
                      "flip:\n"
                      "  %n = sub i64 0, i64 %x\n"
                      "  ret i64 %n\n"
                      "keep:\n"
                      "  ret i64 %x\n"
                      "}\n");
  Interpreter VM(*M);
  EXPECT_EQ(VM.run("abs", {static_cast<uint64_t>(-9)}).ReturnValue, 9u);
  EXPECT_EQ(VM.run("abs", {9}).ReturnValue, 9u);
}

TEST(ParserTest, MemoryAndGepForms) {
  auto M = parseOrDie(
      "@tab = global [16 x i8] bytes [ 10 20 30 40 ]\n"
      "define i64 @pick(i64 %i) {\n"
      "entry:\n"
      "  %slot = gep ptr @tab + i64 %i * 1 + 1\n"
      "  %v = load i8, ptr %slot\n"
      "  %w = zext i8 %v to i64\n"
      "  %base = gep ptr @tab + 0\n"
      "  %first = load i8, ptr %base\n"
      "  %f = zext i8 %first to i64\n"
      "  %sum = add i64 %w, i64 %f\n"
      "  ret i64 %sum\n"
      "}\n");
  Interpreter VM(*M);
  EXPECT_EQ(VM.run("pick", {1}).ReturnValue, 30u + 10u);
}

TEST(ParserTest, VLAAndAlignOverride) {
  auto M = parseOrDie("define i64 @f(i64 %n) {\n"
                      "entry:\n"
                      "  %big = alloca i32, align 64\n"
                      "  %dyn = alloca i8, count i64 %n, align 1\n"
                      "  %p = ptrtoint ptr %big to i64\n"
                      "  %r = urem i64 %p, i64 64\n"
                      "  ret i64 %r\n"
                      "}\n");
  Function *F = M->getFunction("f");
  ASSERT_EQ(F->getStaticAllocas().size(), 1u);
  EXPECT_EQ(F->getStaticAllocas()[0]->getAlign(), 64u);
  ASSERT_EQ(F->getVLAAllocas().size(), 1u);
  Interpreter VM(*M);
  EXPECT_EQ(VM.run("f", {8}).ReturnValue, 0u) << "64-byte alignment honored";
}

TEST(ParserTest, CallsIncludingVoid) {
  auto M = parseOrDie("declare void @print_i64(i64)\n"
                      "define i64 @twice(i64 %x) {\n"
                      "entry:\n"
                      "  call void @print_i64(i64 %x)\n"
                      "  %d = mul i64 %x, i64 2\n"
                      "  ret i64 %d\n"
                      "}\n");
  Interpreter VM(*M);
  ExecResult R = VM.run("twice", {21});
  EXPECT_EQ(R.ReturnValue, 42u);
  EXPECT_EQ(VM.output(), "21\n");
}

TEST(ParserTest, FloatingPointLiteralsAndOps) {
  auto M = parseOrDie("define i64 @f() {\n"
                      "entry:\n"
                      "  %a = fadd double 1.5, double 2.25\n"
                      "  %b = fmul double %a, double 4\n"
                      "  %c = fptosi double %b to i64\n"
                      "  ret i64 %c\n"
                      "}\n");
  Interpreter VM(*M);
  EXPECT_EQ(VM.run("f").ReturnValue, 15u);
}

TEST(ParserTest, SelectAndComparisonPredicates) {
  auto M = parseOrDie("define i64 @max(i64 %a, i64 %b) {\n"
                      "entry:\n"
                      "  %gt = icmp sgt i64 %a, i64 %b\n"
                      "  %m = select i8 %gt, i64 %a, i64 %b\n"
                      "  ret i64 %m\n"
                      "}\n");
  Interpreter VM(*M);
  EXPECT_EQ(VM.run("max", {3, 9}).ReturnValue, 9u);
}

//===----------------------------------------------------------------------===//
// Round-trips
//===----------------------------------------------------------------------===//

TEST(ParserTest, RoundTripReachesPrintFixedPoint) {
  Module M("m");
  buildSumTo(M);
  std::string P1 = printed(M);
  auto M2 = parseOrDie(P1);
  std::string P2 = printed(*M2);
  auto M3 = parseOrDie(P2);
  std::string P3 = printed(*M3);
  EXPECT_EQ(P2, P3) << "print/parse must be idempotent after one cycle";
}

TEST(ParserTest, RoundTripPreservesSemantics) {
  Module M("m");
  buildSumTo(M);
  auto M2 = parseOrDie(printed(M));
  ASSERT_TRUE(verifyModule(*M2));
  Interpreter VM1(M), VM2(*M2);
  for (uint64_t N : {0ull, 1ull, 10ull, 100ull})
    EXPECT_EQ(VM1.run("sumTo", {N}).ReturnValue,
              VM2.run("sumTo", {N}).ReturnValue);
}

TEST(ParserTest, RoundTripsInstrumentedModule) {
  // The Smokestack pass output (geps into the P-BOX global, xor tags,
  // multi-block epilogues, dotted value names) must survive a round-trip
  // and still execute correctly.
  Module M("m");
  buildSumTo(M);
  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);

  auto M2 = parseOrDie(printed(M));
  ASSERT_TRUE(verifyModule(*M2));

  DeterministicEntropySource Entropy(3);
  AesCtrRandomSource Rng(Entropy, 10);
  Interpreter VM(*M2, &Rng);
  ExecResult R = VM.run("sumTo", {10});
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 45u);
}

TEST(ParserTest, RoundTripsEveryOpcode) {
  Module M("m");
  IRBuilder B(M);
  GlobalVariable *G = M.createGlobal("g", B.i64());
  Function *Callee = M.getOrInsertDeclaration("print_i64", B.voidTy(),
                                              {B.i64()});
  Function *F = M.createFunction("all", B.i64(), {B.i64(), B.f64()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Mid = F->createBlock("mid");
  B.setInsertPoint(Entry);
  AllocaInst *A = B.alloca_(B.getContext().getArrayTy(B.i8(), 24), "buf");
  Value *X = F->getArg(0);
  Value *Ops = B.add(X, B.constI64(1));
  Ops = B.sub(Ops, B.constI64(2));
  Ops = B.mul(Ops, B.constI64(3));
  Ops = B.udiv(Ops, B.constI64(2));
  Ops = B.sdiv(Ops, B.constI64(2));
  Ops = B.urem(Ops, B.constI64(97));
  Ops = B.srem(Ops, B.constI64(89));
  Ops = B.and_(Ops, B.constI64(0xFFFF));
  Ops = B.or_(Ops, B.constI64(0x10));
  Ops = B.xor_(Ops, B.constI64(0x3));
  Ops = B.shl(Ops, B.constI64(2));
  Ops = B.lshr(Ops, B.constI64(1));
  Ops = B.binop(BinaryInst::BinOp::AShr, Ops, B.constI64(1));
  Value *FP = B.binop(BinaryInst::BinOp::FAdd, F->getArg(1),
                      B.constF64(0.5));
  FP = B.binop(BinaryInst::BinOp::FSub, FP, B.constF64(0.25));
  FP = B.binop(BinaryInst::BinOp::FMul, FP, B.constF64(2.0));
  FP = B.binop(BinaryInst::BinOp::FDiv, FP, B.constF64(1.5));
  Value *FpInt = B.cast_(CastInst::CastOp::FPToSI, B.i64(), FP);
  Value *Trunced = B.trunc(B.i8(), Ops);
  Value *Wide = B.sext(B.i64(), Trunced);
  Value *Z = B.zext(B.i64(), B.trunc(B.i16(), Wide));
  Value *PtrInt = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), A);
  Value *BackPtr = B.cast_(CastInst::CastOp::IntToPtr, B.ptr(), PtrInt);
  B.store(B.constI8(1), BackPtr);
  Value *AsFp = B.cast_(CastInst::CastOp::SIToFP, B.f64(), Z);
  Value *Narrow = B.cast_(CastInst::CastOp::FPTrunc, B.f32(), AsFp);
  Value *WideFp = B.cast_(CastInst::CastOp::FPExt, B.f64(), Narrow);
  Value *FpInt2 = B.cast_(CastInst::CastOp::FPToSI, B.i64(), WideFp);
  Value *Cmp = B.icmp(ICmpInst::Predicate::ULE, FpInt2, B.constI64(50));
  Value *Sel = B.select(Cmp, FpInt, FpInt2);
  B.store(Sel, G);
  B.call(Callee, {Sel});
  B.br(Mid);
  B.setInsertPoint(Mid);
  B.ret(B.load(B.i64(), G));

  ASSERT_TRUE(verifyModule(M));
  std::string P1 = printed(M);
  ParseResult Parsed = parseModule(P1, "m");
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  auto M2 = std::move(Parsed.M);
  ASSERT_TRUE(verifyModule(*M2));
  EXPECT_EQ(printed(*M2), P1) << "builder order matches print order here";

  Interpreter VM1(M), VM2(*M2);
  for (uint64_t N : {1ull, 7ull, 123ull})
    EXPECT_EQ(VM1.run("all", {N, 0}).ReturnValue,
              VM2.run("all", {N, 0}).ReturnValue);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(ParserTest, ErrorUnknownType) {
  ParseResult R = parseModule("define i99 @f() {\nentry:\n  ret\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown type"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("line 1"), std::string::npos) << R.Error;
}

TEST(ParserTest, ErrorUndefinedValue) {
  ParseResult R = parseModule(
      "define i64 @f() {\nentry:\n  ret i64 %ghost\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("undefined value"), std::string::npos) << R.Error;
}

TEST(ParserTest, ErrorUndefinedGlobal) {
  ParseResult R = parseModule(
      "define i64 @f() {\nentry:\n  %p = gep ptr @ghost + 0\n  ret i64 0\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("undefined global"), std::string::npos) << R.Error;
}

TEST(ParserTest, ErrorRedefinition) {
  ParseResult R = parseModule("define i64 @f() {\n"
                              "entry:\n"
                              "  %x = add i64 1, i64 2\n"
                              "  %x = add i64 3, i64 4\n"
                              "  ret i64 %x\n"
                              "}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("redefinition"), std::string::npos) << R.Error;
}

TEST(ParserTest, ErrorByteOutOfRange) {
  ParseResult R = parseModule("@g = global [4 x i8] bytes [ 300 ]\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("out of range"), std::string::npos) << R.Error;
}

TEST(ParserTest, ErrorLineNumbers) {
  ParseResult R = parseModule("declare i64 @ok(ptr)\n"
                              "\n"
                              "define i64 @f() {\n"
                              "entry:\n"
                              "  %x = frobnicate i64 1, i64 2\n"
                              "  ret i64 %x\n"
                              "}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("line 5"), std::string::npos) << R.Error;
}

TEST(ParserTest, StructDefinitionsRoundTrip) {
  Module M("m");
  IRBuilder B(M);
  StructType *Inner =
      M.getContext().createStructTy("inner", {B.i8(), B.f64()});
  StructType *Outer = M.getContext().createStructTy(
      "outer", {B.i16(), M.getContext().getArrayTy(Inner, 2)});
  Function *F = M.createFunction("f", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *O = B.alloca_(Outer, "o");
  B.store(B.constI64(9), B.gepConst(O, (int64_t)Outer->getFieldOffset(1)));
  B.ret(B.load(B.i64(), B.gepConst(O, (int64_t)Outer->getFieldOffset(1))));

  std::string P1 = printed(M);
  EXPECT_NE(P1.find("%struct.inner = type { i8, double }"),
            std::string::npos)
      << P1;
  EXPECT_NE(P1.find("%struct.outer = type { i16, [2 x %struct.inner] }"),
            std::string::npos)
      << P1;

  ParseResult Parsed = parseModule(P1, "m");
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  EXPECT_EQ(printed(*Parsed.M), P1) << "struct modules must round-trip";

  Interpreter VM1(M), VM2(*Parsed.M);
  EXPECT_EQ(VM1.run("f").ReturnValue, 9u);
  EXPECT_EQ(VM2.run("f").ReturnValue, 9u);
}

TEST(ParserTest, ErrorUnknownStructType) {
  ParseResult R = parseModule(
      "define i64 @f() {\nentry:\n  %x = alloca %struct.ghost, align 8\n"
      "  ret i64 0\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown struct"), std::string::npos) << R.Error;
}
