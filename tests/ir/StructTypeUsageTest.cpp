//===- tests/ir/StructTypeUsageTest.cpp - Structs end to end -------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises user-defined aggregate types through the whole stack: layout
/// (the recursive alignment rules of paper Section IV-A), field access in
/// the VM, and Smokestack permutation of struct-typed locals.
///
//===----------------------------------------------------------------------===//

#include "core/SmokestackPass.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "rng/AesCtr.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>
#include <set>

using namespace smokestack;

namespace {

/// struct Conn { i8 state; i64 bytes; i32 port; } — 24 bytes, align 8.
StructType *makeConn(TypeContext &Ctx) {
  return Ctx.createStructTy(
      "conn", {Ctx.getInt8Ty(), Ctx.getInt64Ty(), Ctx.getInt32Ty()});
}

} // namespace

TEST(StructTypeUsageTest, FieldAccessThroughTheVM) {
  Module M("m");
  IRBuilder B(M);
  StructType *Conn = makeConn(M.getContext());
  Function *F = M.createFunction("f", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *C = B.alloca_(Conn, "conn");
  // state = 2; bytes = 1000; port = 443; return bytes + port + state.
  B.store(B.constI8(2), B.gepConst(C, (int64_t)Conn->getFieldOffset(0)));
  B.store(B.constI64(1000), B.gepConst(C, (int64_t)Conn->getFieldOffset(1)));
  B.store(B.constI32(443), B.gepConst(C, (int64_t)Conn->getFieldOffset(2)));
  Value *State = B.zext(
      B.i64(), B.load(B.i8(), B.gepConst(C, (int64_t)Conn->getFieldOffset(0))));
  Value *Bytes =
      B.load(B.i64(), B.gepConst(C, (int64_t)Conn->getFieldOffset(1)));
  Value *Port = B.zext(
      B.i64(),
      B.load(B.i32(), B.gepConst(C, (int64_t)Conn->getFieldOffset(2))));
  B.ret(B.add(B.add(State, Bytes), Port));

  ASSERT_TRUE(verifyModule(M));
  Interpreter VM(M);
  EXPECT_EQ(VM.run("f").ReturnValue, 2u + 1000 + 443);
}

TEST(StructTypeUsageTest, ArrayOfStructsStride) {
  Module M("m");
  IRBuilder B(M);
  StructType *Conn = makeConn(M.getContext());
  ArrayType *Conns = M.getContext().getArrayTy(Conn, 4);
  EXPECT_EQ(Conns->sizeInBytes(), 4 * Conn->getStructSize());

  Function *F = M.createFunction("f", B.i64(), {B.i64()});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Arr = B.alloca_(Conns, "arr");
  // arr[i].bytes = 100 * i for i in 0..3, return arr[n].bytes.
  for (int I = 0; I != 4; ++I)
    B.store(B.constI64(100 * I),
            B.gepConst(Arr, I * (int64_t)Conn->getStructSize() +
                                (int64_t)Conn->getFieldOffset(1)));
  Value *Slot = B.gep(Arr, F->getArg(0), Conn->getStructSize(),
                      (int64_t)Conn->getFieldOffset(1));
  B.ret(B.load(B.i64(), Slot));

  Interpreter VM(M);
  EXPECT_EQ(VM.run("f", {3}).ReturnValue, 300u);
}

TEST(StructTypeUsageTest, SmokestackPermutesStructLocals) {
  // A struct local participates in the permutation as one (size, align)
  // slot; its internal field layout is preserved.
  Module M("m");
  IRBuilder B(M);
  StructType *Conn = makeConn(M.getContext());
  Function *F = M.createFunction("f", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *C = B.alloca_(Conn, "conn");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  B.store(B.constI8(0), Buf);
  B.store(B.constI64(7777),
          B.gepConst(C, (int64_t)Conn->getFieldOffset(1)));
  Value *CInt = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), C);
  Value *BInt = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), Buf);
  Value *Bytes =
      B.load(B.i64(), B.gepConst(C, (int64_t)Conn->getFieldOffset(1)));
  // Return (delta << 16) | bytes-field so both are visible.
  Value *Delta = B.and_(B.sub(CInt, BInt), B.constI64(0xFFFF));
  B.ret(B.or_(B.shl(Delta, B.constI64(16)), Bytes));

  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(M);
  ASSERT_TRUE(verifyModule(M));

  DeterministicEntropySource Entropy(99);
  AesCtrRandomSource Rng(Entropy, 10);
  Interpreter VM(M, &Rng);
  std::set<uint64_t> Deltas;
  for (int I = 0; I != 32; ++I) {
    ExecResult R = VM.run("f");
    ASSERT_TRUE(R.ok()) << R.Message;
    EXPECT_EQ(R.ReturnValue & 0xFFFF, 7777u)
        << "field access must survive permutation";
    Deltas.insert(R.ReturnValue >> 16);
  }
  EXPECT_GT(Deltas.size(), 1u) << "the struct local must move per call";
}

TEST(StructTypeUsageTest, NestedStructAlignmentRecursion) {
  // Paper Section IV-A: aggregate alignment is the max of the element
  // alignments, computed recursively.
  TypeContext Ctx;
  StructType *Inner =
      Ctx.createStructTy("inner", {Ctx.getInt8Ty(), Ctx.getDoubleTy()});
  StructType *Outer = Ctx.createStructTy(
      "outer", {Ctx.getInt16Ty(), Ctx.getArrayTy(Inner, 2)});
  EXPECT_EQ(Inner->alignment(), 8u);
  EXPECT_EQ(Outer->alignment(), 8u);
  EXPECT_EQ(Outer->getFieldOffset(1), 8u);
  EXPECT_EQ(Outer->getStructSize(), 8u + 2 * 16);
}
