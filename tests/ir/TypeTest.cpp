//===- tests/ir/TypeTest.cpp - Type system tests -------------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include <gtest/gtest.h>

using namespace smokestack;

TEST(TypeTest, PrimitiveSizesAndAlignments) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.getInt8Ty()->sizeInBytes(), 1u);
  EXPECT_EQ(Ctx.getInt16Ty()->sizeInBytes(), 2u);
  EXPECT_EQ(Ctx.getInt32Ty()->sizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getInt64Ty()->sizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getFloatTy()->sizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getDoubleTy()->sizeInBytes(), 8u);
  EXPECT_EQ(Ctx.getPointerTy()->sizeInBytes(), 8u);

  // System-V natural alignment: primitives are self-aligned.
  EXPECT_EQ(Ctx.getInt8Ty()->alignment(), 1u);
  EXPECT_EQ(Ctx.getInt16Ty()->alignment(), 2u);
  EXPECT_EQ(Ctx.getInt32Ty()->alignment(), 4u);
  EXPECT_EQ(Ctx.getInt64Ty()->alignment(), 8u);
  EXPECT_EQ(Ctx.getDoubleTy()->alignment(), 8u);
  EXPECT_EQ(Ctx.getPointerTy()->alignment(), 8u);
}

TEST(TypeTest, ArrayLayout) {
  TypeContext Ctx;
  ArrayType *Arr = Ctx.getArrayTy(Ctx.getInt32Ty(), 10);
  EXPECT_EQ(Arr->sizeInBytes(), 40u);
  EXPECT_EQ(Arr->alignment(), 4u) << "array alignment is element alignment";
  EXPECT_EQ(Arr->getNumElements(), 10u);
  EXPECT_EQ(Arr->getElementType(), Ctx.getInt32Ty());
}

TEST(TypeTest, ArraysAreInterned) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.getArrayTy(Ctx.getInt8Ty(), 1024),
            Ctx.getArrayTy(Ctx.getInt8Ty(), 1024));
  EXPECT_NE(Ctx.getArrayTy(Ctx.getInt8Ty(), 1024),
            Ctx.getArrayTy(Ctx.getInt8Ty(), 512));
}

TEST(TypeTest, NestedArray) {
  TypeContext Ctx;
  ArrayType *Inner = Ctx.getArrayTy(Ctx.getInt64Ty(), 4);
  ArrayType *Outer = Ctx.getArrayTy(Inner, 3);
  EXPECT_EQ(Outer->sizeInBytes(), 96u);
  EXPECT_EQ(Outer->alignment(), 8u) << "recursion reaches the scalar element";
}

TEST(TypeTest, StructNaturalLayout) {
  TypeContext Ctx;
  // struct { i8 a; i32 b; i8 c; } -> offsets 0, 4, 8; size 12; align 4.
  StructType *S = Ctx.createStructTy(
      "mixed", {Ctx.getInt8Ty(), Ctx.getInt32Ty(), Ctx.getInt8Ty()});
  EXPECT_EQ(S->getFieldOffset(0), 0u);
  EXPECT_EQ(S->getFieldOffset(1), 4u);
  EXPECT_EQ(S->getFieldOffset(2), 8u);
  EXPECT_EQ(S->getStructSize(), 12u);
  EXPECT_EQ(S->getStructAlignment(), 4u);
}

TEST(TypeTest, StructAlignmentIsMaxFieldAlignment) {
  TypeContext Ctx;
  // struct { i8; double; } -> double at offset 8, size 16, align 8. This is
  // the "alignment requirement of the largest element" rule from the
  // paper's Section IV-A.
  StructType *S =
      Ctx.createStructTy("padded", {Ctx.getInt8Ty(), Ctx.getDoubleTy()});
  EXPECT_EQ(S->getFieldOffset(1), 8u);
  EXPECT_EQ(S->getStructSize(), 16u);
  EXPECT_EQ(S->getStructAlignment(), 8u);
}

TEST(TypeTest, StructContainingStruct) {
  TypeContext Ctx;
  StructType *Inner =
      Ctx.createStructTy("inner", {Ctx.getInt8Ty(), Ctx.getInt64Ty()});
  StructType *Outer =
      Ctx.createStructTy("outer", {Ctx.getInt16Ty(), Inner});
  EXPECT_EQ(Inner->getStructSize(), 16u);
  EXPECT_EQ(Outer->getFieldOffset(1), 8u)
      << "inner struct is aligned to its own (recursive) alignment";
  EXPECT_EQ(Outer->getStructSize(), 24u);
}

TEST(TypeTest, Names) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.getInt32Ty()->getName(), "i32");
  EXPECT_EQ(Ctx.getPointerTy()->getName(), "ptr");
  EXPECT_EQ(Ctx.getArrayTy(Ctx.getInt8Ty(), 16)->getName(), "[16 x i8]");
  EXPECT_EQ(Ctx.createStructTy("foo", {})->getName(), "%struct.foo");
}

TEST(TypeTest, Predicates) {
  TypeContext Ctx;
  EXPECT_TRUE(Ctx.getInt32Ty()->isInteger());
  EXPECT_FALSE(Ctx.getFloatTy()->isInteger());
  EXPECT_TRUE(Ctx.getFloatTy()->isFloatingPoint());
  EXPECT_TRUE(Ctx.getPointerTy()->isPointer());
  EXPECT_TRUE(Ctx.getArrayTy(Ctx.getInt8Ty(), 2)->isAggregate());
  EXPECT_EQ(Ctx.getInt16Ty()->integerBitWidth(), 16u);
}
