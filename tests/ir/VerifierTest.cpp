//===- tests/ir/VerifierTest.cpp - Verifier tests ------------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

bool hasErrorContaining(const std::vector<std::string> &Errors,
                        const std::string &Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(VerifierTest, EmptyFunctionDefinitionIsInvalid) {
  Module M("test");
  IRBuilder B(M);
  M.createFunction("empty", B.voidTy(), {});
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(M, &Errors));
  EXPECT_TRUE(hasErrorContaining(Errors, "no blocks"));
}

TEST(VerifierTest, MissingTerminator) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.alloca_(B.i32(), "x");
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  EXPECT_TRUE(hasErrorContaining(Errors, "terminator"));
}

TEST(VerifierTest, DeclarationsAlwaysVerify) {
  Module M("test");
  IRBuilder B(M);
  M.getOrInsertDeclaration("snprintf", B.i32(), {}, /*IsVarArg=*/true);
  EXPECT_TRUE(verifyModule(M));
}

TEST(VerifierTest, BinopTypeMismatch) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.add(B.constI32(1), B.constI64(2));
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  EXPECT_TRUE(hasErrorContaining(Errors, "operand types differ"));
}

TEST(VerifierTest, ReturnValueMismatch) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.i32(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(); // should return an i32
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  EXPECT_TRUE(hasErrorContaining(Errors, "return value"));
}

TEST(VerifierTest, CallArgumentCount) {
  Module M("test");
  IRBuilder B(M);
  Function *Callee = M.createFunction("callee", B.voidTy(), {B.i32()});
  {
    IRBuilder CB(M);
    CB.setInsertPoint(Callee->createBlock("entry"));
    CB.ret();
  }
  Function *F = M.createFunction("caller", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.call(Callee, {});
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  EXPECT_TRUE(hasErrorContaining(Errors, "passes 0 args"));
}

TEST(VerifierTest, VarArgCallsAcceptAnyCount) {
  Module M("test");
  IRBuilder B(M);
  Function *Printf = M.getOrInsertDeclaration("snprintf", B.i32(),
                                              {B.ptr(), B.i64()},
                                              /*IsVarArg=*/true);
  Function *F = M.createFunction("caller", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 8), "buf");
  B.call(Printf, {Buf, B.constI64(8), B.constI64(1), B.constI64(2)});
  B.ret();
  EXPECT_TRUE(verifyFunction(*F));
}

TEST(VerifierTest, StoreToNonPointer) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {B.i64()});
  B.setInsertPoint(F->createBlock("entry"));
  // Store through an i64, not a ptr.
  B.getInsertBlock()->append(std::make_unique<StoreInst>(
      B.voidTy(), B.constI32(0), F->getArg(0)));
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  EXPECT_TRUE(hasErrorContaining(Errors, "store pointer operand"));
}

TEST(VerifierTest, TerminatorInMiddle) {
  Module M("test");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {});
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertPoint(Entry);
  B.ret();
  B.ret();
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyFunction(*F, &Errors));
  EXPECT_TRUE(hasErrorContaining(Errors, "middle"));
}
