//===- tests/jit/JitDifferentialTest.cpp - JIT vs decoded differential -----===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of the copy-and-patch JIT against the decoded
/// engine, mirroring vm/DecodedDifferentialTest.cpp one tier up: with
/// JitThreshold=0 every function runs as native code from its first call,
/// and the results must be bit-identical to pure decoded execution — trap
/// kind and message, return value, step count, call count, and builtin
/// output — across the shipped examples (plain and Smokestack-hardened),
/// the randomized fuzz corpus, and handcrafted trap scenarios.
///
/// The whole suite GTEST_SKIPs on hosts where jitAvailable() is false.
///
//===----------------------------------------------------------------------===//

#include "common/RandomProgramGen.h"
#include "core/SmokestackPass.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "jit/JitAbi.h"
#include "rng/AesCtr.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace smokestack;

namespace {

#define SKIP_WITHOUT_JIT()                                                     \
  do {                                                                         \
    if (!jitAvailable())                                                       \
      GTEST_SKIP() << "JIT unavailable on this host";                          \
  } while (0)

/// Runs \p FuncName under the decoded engine and under the JIT (compile on
/// first call) and asserts result parity. Each engine gets its own
/// interpreter and, when \p Seed is nonzero, an identically-seeded AES-10
/// source so hardened modules draw identical layout streams — any
/// divergence in RNG draw *order* between the engines would desync the
/// streams and fail loudly.
void expectJitParity(Module &M, const std::string &FuncName,
                     uint64_t Seed = 0,
                     InterpreterOptions BaseOpts = InterpreterOptions()) {
  InterpreterOptions DecodedOpts = BaseOpts;
  DecodedOpts.UseDecodedEngine = true;
  DecodedOpts.UseJit = false;
  InterpreterOptions JitOpts = BaseOpts;
  JitOpts.UseJit = true;
  JitOpts.JitThreshold = 0;

  DeterministicEntropySource DecodedEntropy(Seed), JitEntropy(Seed);
  AesCtrRandomSource DecodedRng(DecodedEntropy, 10), JitRng(JitEntropy, 10);

  Interpreter DecodedVM(M, Seed ? &DecodedRng : nullptr, DecodedOpts);
  Interpreter JitVM(M, Seed ? &JitRng : nullptr, JitOpts);

  ExecResult DecodedR = DecodedVM.run(FuncName);
  ExecResult JitR = JitVM.run(FuncName);

  EXPECT_EQ(DecodedR.Trap, JitR.Trap)
      << FuncName << ": decoded trapped with '" << trapKindName(DecodedR.Trap)
      << "' (" << DecodedR.Message << "), jit with '"
      << trapKindName(JitR.Trap) << "' (" << JitR.Message << ")";
  EXPECT_EQ(DecodedR.Message, JitR.Message) << FuncName;
  EXPECT_EQ(DecodedR.ReturnValue, JitR.ReturnValue) << FuncName;
  EXPECT_EQ(DecodedR.Steps, JitR.Steps) << FuncName;
  EXPECT_EQ(DecodedVM.callsExecuted(), JitVM.callsExecuted()) << FuncName;
  EXPECT_EQ(DecodedVM.output(), JitVM.output()) << FuncName;
}

std::vector<std::filesystem::path> exampleModules() {
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SMOKESTACK_EXAMPLES_DIR))
    if (Entry.path().extension() == ".ir")
      Paths.push_back(Entry.path());
  return Paths;
}

ParseResult parseFile(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseModule(Buf.str(), Path.filename().string());
}

} // namespace

TEST(JitDifferentialTest, ExampleModulesMatchPlain) {
  SKIP_WITHOUT_JIT();
  std::vector<std::filesystem::path> Paths = exampleModules();
  ASSERT_FALSE(Paths.empty()) << "no examples/*.ir modules found";
  unsigned FunctionsRun = 0;
  for (const auto &Path : Paths) {
    ParseResult Parsed = parseFile(Path);
    ASSERT_TRUE(Parsed.ok()) << Path << ": " << Parsed.Error;
    Module &M = *Parsed.M;
    for (size_t I = 0, E = M.getNumFunctions(); I != E; ++I) {
      Function *F = M.getFunctionAt(I);
      if (F->isDeclaration() || F->getNumArgs() != 0)
        continue;
      expectJitParity(M, F->getName());
      ++FunctionsRun;
    }
  }
  EXPECT_GT(FunctionsRun, 0u) << "no zero-argument definitions exercised";
}

TEST(JitDifferentialTest, ExampleModulesMatchHardened) {
  SKIP_WITHOUT_JIT();
  for (const auto &Path : exampleModules()) {
    ParseResult Parsed = parseFile(Path);
    ASSERT_TRUE(Parsed.ok()) << Path << ": " << Parsed.Error;
    Module &M = *Parsed.M;
    PassManager PM;
    PM.addPass(std::make_unique<SmokestackPass>());
    PM.run(M);
    ASSERT_TRUE(verifyModule(M));
    for (size_t I = 0, E = M.getNumFunctions(); I != E; ++I) {
      Function *F = M.getFunctionAt(I);
      if (F->isDeclaration() || F->getNumArgs() != 0)
        continue;
      expectJitParity(M, F->getName(), /*Seed=*/0xD1FF);
    }
  }
}

// The randomized corpus of the instrumentation fuzzer, replayed one tier
// up: plain modules and Smokestack-hardened modules with pinned randomness.
class JitDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JitDifferentialFuzz, CorpusMatches) {
  SKIP_WITHOUT_JIT();
  uint64_t Seed = GetParam();
  Module Plain("plain");
  buildRandomProgram(Plain, Seed);
  ASSERT_TRUE(verifyModule(Plain));
  expectJitParity(Plain, "main");

  Module Hard("hard");
  buildRandomProgram(Hard, Seed);
  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(Hard);
  ASSERT_TRUE(verifyModule(Hard));
  expectJitParity(Hard, "main", /*Seed=*/Seed ^ 0xF022);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitDifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 41));

TEST(JitDifferentialTest, DivisionByZeroParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Zero = B.alloca_(B.i64(), "z");
  B.store(B.constI64(0), Zero);
  B.ret(B.udiv(B.constI64(7), B.load(B.i64(), Zero)));
  expectJitParity(M, "main");
}

TEST(JitDifferentialTest, SignedDivisionOverflowParity) {
  // INT64_MIN / -1 wraps (remainder 0) in both engines instead of faulting
  // — the one case where native idiv would trap #DE, so it must stay on
  // the shim path.
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *MinSlot = B.alloca_(B.i64(), "m");
  B.store(B.constI64(uint64_t(1) << 63), MinSlot);
  AllocaInst *NegSlot = B.alloca_(B.i64(), "n");
  B.store(B.constI64(~uint64_t(0)), NegSlot);
  Value *Q = B.sdiv(B.load(B.i64(), MinSlot), B.load(B.i64(), NegSlot));
  Value *R = B.srem(B.load(B.i64(), MinSlot), B.load(B.i64(), NegSlot));
  B.ret(B.add(Q, R));
  expectJitParity(M, "main");
}

TEST(JitDifferentialTest, UnmappedAccessParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Value *Bad = B.cast_(CastInst::CastOp::IntToPtr, B.ptr(), B.constI64(64));
  B.ret(B.load(B.i64(), Bad));
  expectJitParity(M, "main");
}

TEST(JitDifferentialTest, OutOfFuelParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  B.setInsertPoint(Entry);
  B.br(Loop);
  B.setInsertPoint(Loop);
  B.br(Loop);
  InterpreterOptions Opts;
  Opts.Fuel = 100;
  expectJitParity(M, "main", /*Seed=*/0, Opts);
}

TEST(JitDifferentialTest, VlaSizeOverflowParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *CountSlot = B.alloca_(B.i64(), "n");
  B.store(B.constI64(uint64_t(1) << 62), CountSlot);
  AllocaInst *VLA = B.allocaVLA(B.i64(), B.load(B.i64(), CountSlot), "vla");
  B.store(B.constI64(1), VLA);
  B.ret(B.constI64(0));
  expectJitParity(M, "main");
}

TEST(JitDifferentialTest, UnreachableParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.unreachable_();
  expectJitParity(M, "main");
}

TEST(JitDifferentialTest, CallDepthLimitParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.call(F, {}, "again"));
  expectJitParity(M, "main");
}

TEST(JitDifferentialTest, UnknownBuiltinParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *Mystery = M.getOrInsertDeclaration("no.such.builtin", B.i64(), {});
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.call(Mystery, {}));
  expectJitParity(M, "main");
}

TEST(JitDifferentialTest, BuiltinsAndInputParity) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  Function *GetInput =
      M.getOrInsertDeclaration("get_input", B.i64(), {B.ptr(), B.i64()});
  Function *Print =
      M.getOrInsertDeclaration("print_i64", B.voidTy(), {B.i64()});
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  Value *Got = B.call(GetInput, {Buf, B.constI64(16)});
  B.call(Print, {Got});
  B.ret(B.add(Got, B.load(B.i64(), Buf)));

  InterpreterOptions DecodedOpts, JitOpts;
  JitOpts.UseJit = true;
  JitOpts.JitThreshold = 0;
  Interpreter DecodedVM(M, nullptr, DecodedOpts), JitVM(M, nullptr, JitOpts);
  DecodedVM.pushInputString("hello");
  JitVM.pushInputString("hello");
  ExecResult DecodedR = DecodedVM.run("main"), JitR = JitVM.run("main");
  EXPECT_EQ(DecodedR.Trap, JitR.Trap);
  EXPECT_EQ(DecodedR.ReturnValue, JitR.ReturnValue);
  EXPECT_EQ(DecodedR.Steps, JitR.Steps);
  EXPECT_EQ(DecodedVM.output(), JitVM.output());
}

TEST(JitDifferentialTest, RepeatedRunsReuseCompiledCode) {
  // The second run must reuse the installed code (one compiled function,
  // stable results) — guards against per-run recompilation and against
  // stale state leaking between runs through the code cache.
  SKIP_WITHOUT_JIT();
  Module M("t");
  IRBuilder B(M);
  buildRandomProgram(M, 7);
  InterpreterOptions JitOpts;
  JitOpts.UseJit = true;
  JitOpts.JitThreshold = 0;
  Interpreter JitVM(M, nullptr, JitOpts);
  ExecResult First = JitVM.run("main");
  uint64_t CompiledAfterFirst = JitVM.jitCompiledFunctions();
  ExecResult Second = JitVM.run("main");
  EXPECT_EQ(First.Trap, Second.Trap);
  EXPECT_EQ(First.ReturnValue, Second.ReturnValue);
  EXPECT_EQ(First.Steps, Second.Steps);
  EXPECT_GT(CompiledAfterFirst, 0u);
  EXPECT_EQ(JitVM.jitCompiledFunctions(), CompiledAfterFirst);
}
