//===- tests/jit/JitRuntimeTest.cpp - Tiering, fuel, cancel, W^X ----------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT's runtime contract beyond pure result parity: invocation-count
/// tier promotion, fuel exhaustion and cooperative cancellation raised
/// *inside* compiled code at the interpreter's exact step, W^X on the code
/// pages (no mapping in the process is ever writable and executable at
/// once), and code-cache survival across snapshot restore / invalidation
/// on program change.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "jit/JitAbi.h"
#include "vm/DecodedProgram.h"
#include "vm/Interpreter.h"
#include "vm/Snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>

using namespace smokestack;

namespace {

#define SKIP_WITHOUT_JIT()                                                     \
  do {                                                                         \
    if (!jitAvailable())                                                       \
      GTEST_SKIP() << "JIT unavailable on this host";                          \
  } while (0)

/// Builds `main`: a counting loop summing 0..N-1 through a stack slot, so
/// compiled code exercises the inlined load/store fast path, branches, and
/// compares. Returns the module by filling \p M.
void buildLoopMain(Module &M, uint64_t N) {
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Done = F->createBlock("done");
  B.setInsertPoint(Entry);
  AllocaInst *I = B.alloca_(B.i64(), "i");
  AllocaInst *Sum = B.alloca_(B.i64(), "sum");
  B.store(B.constI64(0), I);
  B.store(B.constI64(0), Sum);
  B.br(Loop);
  B.setInsertPoint(Loop);
  Value *IV = B.load(B.i64(), I);
  B.store(B.add(B.load(B.i64(), Sum), IV), Sum);
  B.store(B.add(IV, B.constI64(1)), I);
  B.condBr(B.icmp(ICmpInst::Predicate::ULT, B.add(IV, B.constI64(1)),
                  B.constI64(N)),
           Loop, Done);
  B.setInsertPoint(Done);
  B.ret(B.load(B.i64(), Sum));
}

} // namespace

TEST(JitRuntimeTest, TierPromotionAtThreshold) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  buildLoopMain(M, 100);
  InterpreterOptions Opts;
  Opts.UseJit = true;
  Opts.JitThreshold = 3;
  Interpreter VM(M, nullptr, Opts);

  ExecResult Baseline = VM.run("main");
  ASSERT_TRUE(Baseline.ok());
  // Runs 1-3 are below the threshold and stay interpreted; run 4 promotes.
  EXPECT_EQ(VM.jitCompiledFunctions(), 0u);
  VM.run("main");
  VM.run("main");
  EXPECT_EQ(VM.jitCompiledFunctions(), 0u);
  ExecResult Promoted = VM.run("main");
  EXPECT_EQ(VM.jitCompiledFunctions(), 1u);
  // The promoted run is indistinguishable from the interpreted ones.
  EXPECT_EQ(Promoted.ReturnValue, Baseline.ReturnValue);
  EXPECT_EQ(Promoted.Steps, Baseline.Steps);
}

TEST(JitRuntimeTest, FuelExhaustionInsideCompiledCode) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  buildLoopMain(M, 1u << 20); // far more iterations than the fuel allows
  InterpreterOptions DecodedOpts;
  DecodedOpts.Fuel = 5000;
  InterpreterOptions JitOpts = DecodedOpts;
  JitOpts.UseJit = true;
  JitOpts.JitThreshold = 0;

  Interpreter DecodedVM(M, nullptr, DecodedOpts), JitVM(M, nullptr, JitOpts);
  ExecResult DecodedR = DecodedVM.run("main"), JitR = JitVM.run("main");
  ASSERT_GT(JitVM.jitCompiledFunctions(), 0u);
  EXPECT_EQ(JitR.Trap, TrapKind::OutOfFuel);
  EXPECT_EQ(DecodedR.Trap, JitR.Trap);
  EXPECT_EQ(DecodedR.Message, JitR.Message);
  EXPECT_EQ(DecodedR.Steps, JitR.Steps);
}

TEST(JitRuntimeTest, CooperativeCancelInsideCompiledCode) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  buildLoopMain(M, 1u << 20);
  // 3000 is not a poll point, so both engines run until FuelLeft counts
  // down to 2048 (the first multiple of 1024) and must stop on exactly
  // that step with the same WorkerCrash trap.
  InterpreterOptions DecodedOpts;
  DecodedOpts.Fuel = 3000;
  InterpreterOptions JitOpts = DecodedOpts;
  JitOpts.UseJit = true;
  JitOpts.JitThreshold = 0;

  std::atomic<bool> Cancel{true};
  Interpreter DecodedVM(M, nullptr, DecodedOpts), JitVM(M, nullptr, JitOpts);
  DecodedVM.setCancelFlag(&Cancel);
  JitVM.setCancelFlag(&Cancel);
  ExecResult DecodedR = DecodedVM.run("main"), JitR = JitVM.run("main");
  ASSERT_GT(JitVM.jitCompiledFunctions(), 0u);
  EXPECT_EQ(JitR.Trap, TrapKind::WorkerCrash);
  EXPECT_EQ(DecodedR.Trap, JitR.Trap);
  EXPECT_EQ(DecodedR.Message, JitR.Message);
  EXPECT_EQ(DecodedR.Steps, JitR.Steps);
  EXPECT_EQ(DecodedR.Steps, 3000u - 2048u);
}

TEST(JitRuntimeTest, NoWritableExecutableMappings) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  buildLoopMain(M, 100);
  InterpreterOptions Opts;
  Opts.UseJit = true;
  Opts.JitThreshold = 0;
  Interpreter VM(M, nullptr, Opts);
  ASSERT_TRUE(VM.run("main").ok());
  ASSERT_GT(VM.jitCompiledFunctions(), 0u);

  // With sealed code resident, no mapping in the whole process may be
  // writable and executable at once — the W^X contract of CodeArena.
  std::ifstream Maps("/proc/self/maps");
  ASSERT_TRUE(Maps.is_open()) << "cannot inspect /proc/self/maps";
  std::string Line;
  unsigned ExecMappings = 0;
  while (std::getline(Maps, Line)) {
    std::istringstream LS(Line);
    std::string Range, Perms;
    LS >> Range >> Perms;
    ASSERT_GE(Perms.size(), 3u) << Line;
    bool W = Perms.find('w') != std::string::npos;
    bool X = Perms.find('x') != std::string::npos;
    EXPECT_FALSE(W && X) << "writable+executable mapping: " << Line;
    if (X)
      ++ExecMappings;
  }
  EXPECT_GT(ExecMappings, 0u) << "maps scan saw no executable mappings at all";
}

TEST(JitRuntimeTest, CodeCacheSurvivesSnapshotRestore) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  buildLoopMain(M, 100);
  InterpreterOptions Opts;
  Opts.UseJit = true;
  Opts.JitThreshold = 0;
  Interpreter VM(M, nullptr, Opts);
  VmSnapshot S = VM.captureSnapshot();

  ExecResult First = VM.run("main");
  ASSERT_TRUE(First.ok());
  uint64_t Compiled = VM.jitCompiledFunctions();
  ASSERT_GT(Compiled, 0u);

  // The cache is derived state: restore rolls memory back but keeps the
  // compiled code, and the post-restore run reuses it bit-identically.
  VM.restoreFromSnapshot(S);
  EXPECT_EQ(VM.jitCompiledFunctions(), Compiled);
  ExecResult Again = VM.run("main");
  EXPECT_EQ(Again.Trap, First.Trap);
  EXPECT_EQ(Again.ReturnValue, First.ReturnValue);
  EXPECT_EQ(Again.Steps, First.Steps);
  EXPECT_EQ(VM.jitCompiledFunctions(), Compiled);
}

TEST(JitRuntimeTest, ProgramChangeInvalidatesCodeCache) {
  SKIP_WITHOUT_JIT();
  Module M("t");
  buildLoopMain(M, 100);
  DecodedProgram ProgA(M), ProgB(M);
  InterpreterOptions Opts;
  Opts.UseJit = true;
  Opts.JitThreshold = 0;
  Interpreter VM(M, nullptr, Opts);
  VM.setSharedProgram(&ProgA);
  ASSERT_TRUE(VM.run("main").ok());
  ASSERT_GT(VM.jitCompiledFunctions(), 0u);

  // Same program pointer: cache kept. New program: entries are keyed on
  // ProgA's DecodedFunctions and must be dropped, then rebuilt lazily.
  VM.setSharedProgram(&ProgA);
  EXPECT_GT(VM.jitCompiledFunctions(), 0u);
  VM.setSharedProgram(&ProgB);
  EXPECT_EQ(VM.jitCompiledFunctions(), 0u);
  ASSERT_TRUE(VM.run("main").ok());
  EXPECT_GT(VM.jitCompiledFunctions(), 0u);
}

TEST(JitRuntimeTest, JitOptionFallsBackWhenUnavailable) {
  // On non-JIT hosts UseJit must degrade to the decoded engine, not fail;
  // on JIT hosts this just checks the option plumbing stays consistent.
  Module M("t");
  buildLoopMain(M, 10);
  InterpreterOptions Opts;
  Opts.UseJit = true;
  Opts.JitThreshold = 0;
  Interpreter VM(M, nullptr, Opts);
  ExecResult R = VM.run("main");
  EXPECT_TRUE(R.ok());
  if (!jitAvailable())
    EXPECT_EQ(VM.jitCompiledFunctions(), 0u);
}
