//===- tests/net/FrameCodecTest.cpp - wire protocol hardening tests -------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The frame layer's hostile-peer contract: every malformed byte stream is
// classified as an accounted FrameError (never a crash, never a silent
// desync), frame boundaries never depend on read chunking, and after an
// error the decoder is dead for good. The schema parsers get the same
// treatment: lying lengths, bad magics, and trailing garbage are rejected
// without reading out of bounds. A seeded fuzz harness drives both layers
// with random bytes and random chunkings.
//
//===----------------------------------------------------------------------===//

#include "net/FrameCodec.h"

#include "support/SplitMix64.h"

#include "gtest/gtest.h"

#include <cstring>

using namespace smokestack;

namespace {

/// Little-endian u32, the shape of a length prefix.
std::vector<uint8_t> u32le(uint32_t V) {
  return {static_cast<uint8_t>(V), static_cast<uint8_t>(V >> 8),
          static_cast<uint8_t>(V >> 16), static_cast<uint8_t>(V >> 24)};
}

std::vector<uint8_t> cat(std::initializer_list<std::vector<uint8_t>> Parts) {
  std::vector<uint8_t> Out;
  for (const auto &P : Parts)
    Out.insert(Out.end(), P.begin(), P.end());
  return Out;
}

/// Feeds the whole stream in one call and pumps the decoder dry.
struct PumpResult {
  std::vector<std::vector<uint8_t>> Payloads;
  FrameError Error = FrameError::None;
};

PumpResult pump(FrameDecoder &D, const std::vector<uint8_t> &Stream) {
  D.feed(Stream.data(), Stream.size());
  PumpResult R;
  std::vector<uint8_t> Payload;
  FrameError Err;
  for (;;) {
    FrameDecoder::Item I = D.next(Payload, Err);
    if (I == FrameDecoder::Item::None)
      return R;
    if (I == FrameDecoder::Item::Error) {
      R.Error = Err;
      return R;
    }
    R.Payloads.push_back(Payload);
  }
}

WireRequest sampleRequest() {
  WireRequest Req;
  Req.Index = 0x0123456789abcdefULL;
  Req.DeadlineMillis = 250;
  Req.Inputs = {{'h', 'i'}, {}, {0, 1, 2, 255}};
  return Req;
}

TEST(FrameCodecTest, RequestRoundTrip) {
  WireRequest In = sampleRequest();
  std::vector<uint8_t> Frame = encodeRequestFrame(In);

  FrameDecoder D;
  PumpResult R = pump(D, Frame);
  ASSERT_EQ(R.Payloads.size(), 1u);
  EXPECT_EQ(R.Error, FrameError::None);

  WireRequest Out;
  ASSERT_TRUE(parseRequestPayload(R.Payloads[0].data(), R.Payloads[0].size(),
                                  Out));
  EXPECT_EQ(Out.Index, In.Index);
  EXPECT_EQ(Out.DeadlineMillis, In.DeadlineMillis);
  EXPECT_EQ(Out.Inputs, In.Inputs);
  EXPECT_EQ(D.finalize(), FrameError::None);
  EXPECT_EQ(D.bufferedBytes(), 0u);
}

TEST(FrameCodecTest, ResponseRoundTrip) {
  WireResponse In;
  In.Index = 42;
  In.Status = WireStatus::Trapped;
  In.Trap = TrapKind::OutOfFuel;
  In.Flags = RespFlagDeadlineMissed;
  In.Attempts = 3;
  In.ReturnValue = 0xdeadbeefULL;
  In.Steps = 1u << 20;
  std::vector<uint8_t> Frame = encodeResponseFrame(In);

  FrameDecoder D;
  PumpResult R = pump(D, Frame);
  ASSERT_EQ(R.Payloads.size(), 1u);

  WireResponse Out;
  ASSERT_TRUE(parseResponsePayload(R.Payloads[0].data(), R.Payloads[0].size(),
                                   Out));
  EXPECT_EQ(Out.Index, In.Index);
  EXPECT_EQ(Out.Status, In.Status);
  EXPECT_EQ(Out.Trap, In.Trap);
  EXPECT_EQ(Out.Flags, In.Flags);
  EXPECT_EQ(Out.Attempts, In.Attempts);
  EXPECT_EQ(Out.ReturnValue, In.ReturnValue);
  EXPECT_EQ(Out.Steps, In.Steps);
}

//===----------------------------------------------------------------------===//
// Malformed frames, table-driven: one row per failure class, asserting the
// exact FrameError and that the decoder is dead afterwards.
//===----------------------------------------------------------------------===//

struct MalformedFrameCase {
  const char *Name;
  std::vector<uint8_t> Stream;
  FrameError Expected;     ///< From next() — fatal framing errors.
  FrameError OnFinalize;   ///< From finalize() — mid-frame close.
};

TEST(FrameCodecTest, MalformedFramesAreClassified) {
  const std::vector<uint8_t> Valid = encodeRequestFrame(sampleRequest());
  const MalformedFrameCase Cases[] = {
      {"zero-length prefix", u32le(0), FrameError::ZeroLength,
       FrameError::None},
      {"oversize prefix", u32le(MaxFramePayload + 1), FrameError::Oversize,
       FrameError::None},
      {"oversize prefix, max u32", u32le(0xffffffffu), FrameError::Oversize,
       FrameError::None},
      {"truncated prefix (1 byte)", {0x05}, FrameError::None,
       FrameError::Truncated},
      {"truncated prefix (3 bytes)", {0x05, 0x00, 0x00}, FrameError::None,
       FrameError::Truncated},
      {"truncated payload", cat({u32le(10), {1, 2, 3}}), FrameError::None,
       FrameError::Truncated},
      {"valid then zero-length", cat({Valid, u32le(0)}),
       FrameError::ZeroLength, FrameError::None},
      {"valid then truncated", cat({Valid, u32le(100), {9}}),
       FrameError::None, FrameError::Truncated},
  };

  for (const MalformedFrameCase &C : Cases) {
    SCOPED_TRACE(C.Name);
    FrameDecoder D;
    PumpResult R = pump(D, C.Stream);
    EXPECT_EQ(R.Error, C.Expected);
    EXPECT_EQ(D.finalize(), C.OnFinalize);
    if (C.Expected != FrameError::None) {
      EXPECT_TRUE(D.dead());
      // Dead is dead: a valid frame fed afterwards yields nothing.
      std::vector<uint8_t> Payload;
      FrameError Err;
      D.feed(Valid.data(), Valid.size());
      EXPECT_EQ(D.next(Payload, Err), FrameDecoder::Item::None);
      EXPECT_EQ(D.bufferedBytes(), 0u);
    }
  }
}

TEST(FrameCodecTest, OversizePrefixRejectedBeforePayloadArrives) {
  // The lying prefix alone must kill the stream: the decoder may not
  // buffer toward a 4 GiB payload that never comes.
  FrameDecoder D;
  std::vector<uint8_t> Prefix = u32le(0x40000000u);
  PumpResult R = pump(D, Prefix);
  EXPECT_EQ(R.Error, FrameError::Oversize);
  EXPECT_TRUE(D.dead());
  EXPECT_EQ(D.bufferedBytes(), 0u);
}

TEST(FrameCodecTest, MaxSizePayloadIsAccepted) {
  std::vector<uint8_t> Stream = u32le(MaxFramePayload);
  Stream.resize(4 + MaxFramePayload, 0xab);
  FrameDecoder D;
  PumpResult R = pump(D, Stream);
  ASSERT_EQ(R.Payloads.size(), 1u);
  EXPECT_EQ(R.Payloads[0].size(), MaxFramePayload);
  EXPECT_EQ(R.Error, FrameError::None);
}

//===----------------------------------------------------------------------===//
// Chunking independence: frame boundaries never depend on read boundaries.
//===----------------------------------------------------------------------===//

TEST(FrameCodecTest, PipelinedFramesSplitAtEveryByteBoundary) {
  WireRequest A = sampleRequest();
  WireRequest B;
  B.Index = 7;
  WireRequest C;
  C.Index = 8;
  C.Inputs = {{0xff}};
  const std::vector<uint8_t> Stream =
      cat({encodeRequestFrame(A), encodeRequestFrame(B),
           encodeRequestFrame(C)});

  for (size_t Split = 0; Split <= Stream.size(); ++Split) {
    SCOPED_TRACE(Split);
    FrameDecoder D;
    D.feed(Stream.data(), Split);
    PumpResult First = pump(D, {}); // pump whatever the first chunk held
    D.feed(Stream.data() + Split, Stream.size() - Split);
    PumpResult Second = pump(D, {});

    std::vector<std::vector<uint8_t>> All = First.Payloads;
    All.insert(All.end(), Second.Payloads.begin(), Second.Payloads.end());
    ASSERT_EQ(All.size(), 3u);
    uint64_t WantIndex[] = {A.Index, B.Index, C.Index};
    for (size_t I = 0; I != 3; ++I) {
      WireRequest Out;
      ASSERT_TRUE(parseRequestPayload(All[I].data(), All[I].size(), Out));
      EXPECT_EQ(Out.Index, WantIndex[I]);
    }
    EXPECT_EQ(D.finalize(), FrameError::None);
  }
}

TEST(FrameCodecTest, ByteAtATimeFeeding) {
  const std::vector<uint8_t> Stream =
      cat({encodeRequestFrame(sampleRequest()),
           encodeRequestFrame(sampleRequest())});
  FrameDecoder D;
  size_t Got = 0;
  std::vector<uint8_t> Payload;
  FrameError Err;
  for (uint8_t Byte : Stream) {
    D.feed(&Byte, 1);
    while (D.next(Payload, Err) == FrameDecoder::Item::Payload)
      ++Got;
  }
  EXPECT_EQ(Got, 2u);
  EXPECT_EQ(D.bufferedBytes(), 0u);
}

TEST(FrameCodecTest, BufferDoesNotRatchetAcrossPipelinedFrames) {
  // The anti-ratchet rule: the consumed prefix is reclaimed on feed, so a
  // pipelining peer cannot grow the buffer frame by frame.
  const std::vector<uint8_t> Frame = encodeRequestFrame(sampleRequest());
  FrameDecoder D;
  std::vector<uint8_t> Payload;
  FrameError Err;
  for (unsigned I = 0; I != 1000; ++I) {
    D.feed(Frame.data(), Frame.size());
    ASSERT_EQ(D.next(Payload, Err), FrameDecoder::Item::Payload);
    ASSERT_LE(D.bufferedBytes(), 2 * Frame.size());
  }
}

//===----------------------------------------------------------------------===//
// Schema layer, table-driven: a decoded frame whose payload lies.
//===----------------------------------------------------------------------===//

TEST(FrameCodecTest, RequestSchemaRejectsMalformedPayloads) {
  const std::vector<uint8_t> Good = [&] {
    std::vector<uint8_t> F = encodeRequestFrame(sampleRequest());
    return std::vector<uint8_t>(F.begin() + 4, F.end()); // strip prefix
  }();

  struct Case {
    const char *Name;
    std::vector<uint8_t> Payload;
  };
  std::vector<Case> Cases;
  Cases.push_back({"empty payload", {}});
  Cases.push_back({"short header", {0x52, 0x51}});
  {
    std::vector<uint8_t> P = Good;
    P[0] ^= 0xff;
    Cases.push_back({"bad magic", P});
  }
  {
    std::vector<uint8_t> P = Good;
    P.push_back(0x00);
    Cases.push_back({"trailing byte", P});
  }
  {
    // NumInputs lies high: 20 bytes of header, count = MaxRequestInputs+1.
    std::vector<uint8_t> P =
        cat({u32le(RequestMagic), u32le(0), u32le(0), u32le(0),
             u32le(MaxRequestInputs + 1)});
    Cases.push_back({"too many inputs", P});
  }
  {
    // One input whose record length promises more bytes than exist.
    std::vector<uint8_t> P =
        cat({u32le(RequestMagic), u32le(0), u32le(0), u32le(0), u32le(1),
             u32le(1000), {1, 2, 3}});
    Cases.push_back({"lying record length", P});
  }
  {
    // Record length of ~4 GiB: must fail cleanly, not allocate.
    std::vector<uint8_t> P =
        cat({u32le(RequestMagic), u32le(0), u32le(0), u32le(0), u32le(1),
             u32le(0xfffffff0u)});
    Cases.push_back({"huge record length", P});
  }

  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    WireRequest Out;
    EXPECT_FALSE(parseRequestPayload(C.Payload.data(), C.Payload.size(), Out));
  }

  WireRequest Out;
  EXPECT_TRUE(parseRequestPayload(Good.data(), Good.size(), Out));
}

TEST(FrameCodecTest, ResponseSchemaRejectsOutOfRangeEnums) {
  WireResponse In;
  In.Index = 1;
  std::vector<uint8_t> F = encodeResponseFrame(In);
  std::vector<uint8_t> Good(F.begin() + 4, F.end());

  WireResponse Out;
  ASSERT_TRUE(parseResponsePayload(Good.data(), Good.size(), Out));

  // Payload layout: magic(4) index(8) status(1) trap(1) ...
  std::vector<uint8_t> BadStatus = Good;
  BadStatus[12] = static_cast<uint8_t>(WireStatus::ProtocolError) + 1;
  EXPECT_FALSE(parseResponsePayload(BadStatus.data(), BadStatus.size(), Out));

  std::vector<uint8_t> BadTrap = Good;
  BadTrap[13] = static_cast<uint8_t>(TrapKind::WorkerCrash) + 1;
  EXPECT_FALSE(parseResponsePayload(BadTrap.data(), BadTrap.size(), Out));

  std::vector<uint8_t> Trailing = Good;
  Trailing.push_back(0);
  EXPECT_FALSE(parseResponsePayload(Trailing.data(), Trailing.size(), Out));
}

TEST(FrameCodecTest, GarbagePayloadDecodesButFailsSchema) {
  // A well-framed frame full of garbage is the frame layer's problem no
  // longer: the decoder hands it out, the schema rejects it.
  std::vector<uint8_t> Stream = cat({u32le(32), std::vector<uint8_t>(32, 0x5a)});
  FrameDecoder D;
  PumpResult R = pump(D, Stream);
  ASSERT_EQ(R.Payloads.size(), 1u);
  WireRequest Out;
  EXPECT_FALSE(parseRequestPayload(R.Payloads[0].data(), R.Payloads[0].size(),
                                   Out));
  EXPECT_FALSE(D.dead()); // framing was fine; the connection decides
}

//===----------------------------------------------------------------------===//
// Seeded fuzz harness. Two corpora: pure random bytes, and mutated valid
// frames (flip/truncate/duplicate), both under random chunking. The
// invariants: no crash, no out-of-bounds (ASan's job), the buffer stays
// bounded by one frame, and a dead decoder stays dead and empty.
//===----------------------------------------------------------------------===//

void fuzzOneStream(SplitMix64 &Rng, const std::vector<uint8_t> &Stream) {
  FrameDecoder D;
  size_t Pos = 0;
  std::vector<uint8_t> Payload;
  FrameError Err;
  bool SawError = false;
  while (Pos < Stream.size()) {
    size_t Chunk = 1 + Rng.nextBounded(4096);
    Chunk = std::min(Chunk, Stream.size() - Pos);
    D.feed(Stream.data() + Pos, Chunk);
    Pos += Chunk;
    for (;;) {
      FrameDecoder::Item I = D.next(Payload, Err);
      if (I == FrameDecoder::Item::None)
        break;
      if (I == FrameDecoder::Item::Error) {
        ASSERT_NE(Err, FrameError::None);
        SawError = true;
        break;
      }
      ASSERT_GE(Payload.size(), 1u);
      ASSERT_LE(Payload.size(), MaxFramePayload);
      WireRequest R1;
      WireResponse R2;
      // Either parser must survive any payload the frame layer emits.
      (void)parseRequestPayload(Payload.data(), Payload.size(), R1);
      (void)parseResponsePayload(Payload.data(), Payload.size(), R2);
    }
    // The decoder's buffer stays bounded by one max frame (plus the chunk
    // that completed it, pending the next feed's reclaim).
    ASSERT_LE(D.bufferedBytes(), size_t(MaxFramePayload) + 4 + 8192);
    if (SawError) {
      ASSERT_TRUE(D.dead());
      ASSERT_EQ(D.bufferedBytes(), 0u);
    }
  }
  (void)D.finalize();
}

TEST(FrameCodecFuzzTest, RandomByteStreams) {
  for (uint64_t Seed = 1; Seed <= 32; ++Seed) {
    SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL);
    std::vector<uint8_t> Stream(1 + Rng.nextBounded(8192));
    for (uint8_t &B : Stream)
      B = static_cast<uint8_t>(Rng.next());
    SCOPED_TRACE(Seed);
    fuzzOneStream(Rng, Stream);
  }
}

TEST(FrameCodecFuzzTest, MutatedValidFrames) {
  for (uint64_t Seed = 1; Seed <= 32; ++Seed) {
    SplitMix64 Rng(Seed);
    // Start from a pipelined stream of valid frames...
    std::vector<uint8_t> Stream;
    unsigned Frames = 1 + Rng.nextBounded(4);
    for (unsigned F = 0; F != Frames; ++F) {
      WireRequest Req;
      Req.Index = Rng.next();
      Req.DeadlineMillis = static_cast<uint32_t>(Rng.nextBounded(1000));
      unsigned NumInputs = static_cast<unsigned>(Rng.nextBounded(4));
      for (unsigned I = 0; I != NumInputs; ++I)
        Req.Inputs.emplace_back(Rng.nextBounded(64), 0x41);
      std::vector<uint8_t> Frame = encodeRequestFrame(Req);
      Stream.insert(Stream.end(), Frame.begin(), Frame.end());
    }
    // ...then mutate: byte flips, truncation, or duplication.
    switch (Rng.nextBounded(4)) {
    case 0: // flip a handful of bytes
      for (unsigned I = 0; I != 4 && !Stream.empty(); ++I)
        Stream[Rng.nextBounded(Stream.size())] ^=
            static_cast<uint8_t>(1 + Rng.nextBounded(255));
      break;
    case 1: // truncate
      Stream.resize(Rng.nextBounded(Stream.size() + 1));
      break;
    case 2: { // duplicate a slice into the middle
      size_t At = Rng.nextBounded(Stream.size() + 1);
      std::vector<uint8_t> Slice(
          Stream.begin(),
          Stream.begin() +
              static_cast<ptrdiff_t>(Rng.nextBounded(Stream.size() + 1)));
      Stream.insert(Stream.begin() + static_cast<ptrdiff_t>(At),
                    Slice.begin(), Slice.end());
      break;
    }
    default: // leave valid (the harness must also pass clean streams)
      break;
    }
    SCOPED_TRACE(Seed);
    fuzzOneStream(Rng, Stream);
  }
}

} // namespace
