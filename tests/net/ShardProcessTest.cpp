//===- tests/net/ShardProcessTest.cpp - process-shard isolation tests -----===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Multi-process shard isolation (DESIGN.md §15): serving through forked
// shard child processes is bit-identical to serving through in-process
// WorkerPool shards; a SIGKILLed shard child is re-forked and its
// in-flight requests replayed with no observable effect beyond the shard
// lifecycle counters; and when the restart budget is exhausted the
// stranded requests are poisoned with exact books instead of being lost.
//
//===----------------------------------------------------------------------===//

#include "net/ShardProcess.h"

#include "ir/IRBuilder.h"
#include "net/Client.h"
#include "net/SocketServer.h"
#include "runtime/ShardSupervisor.h"

#include "gtest/gtest.h"

#include <map>

using namespace smokestack;

namespace {

/// driver(): folds two smokestack.rand draws into a byte — the per-request
/// RNG chain makes every response a pure function of (RootSeed, Index),
/// which is what thread-vs-process and kill-and-replay comparisons key on.
void buildRandModule(Module &M) {
  IRBuilder B(M);
  Function *Rand = M.getOrInsertDeclaration("smokestack.rand", B.i64(), {});
  Function *Driver = M.createFunction("driver", B.i64(), {});
  B.setInsertPoint(Driver->createBlock("entry"));
  Value *A = B.call(Rand, {});
  Value *C = B.call(Rand, {});
  B.ret(B.and_(B.add(A, C), B.constI64(0xff)));
}

ServerOptions shardServerOptions(unsigned Shards, ShardMode Mode) {
  ServerOptions Opts;
  Opts.Shards = Shards;
  Opts.Mode = Mode;
  Opts.Pool.Workers = 2;
  Opts.Pool.RootSeed = 7;
  Opts.Pool.Function = "driver";
  return Opts;
}

/// Sends indices [0, N) pipelined on one connection and returns the
/// responses keyed by index (completion order is scheduling-dependent).
std::map<uint64_t, WireResponse> serveAll(uint16_t Port, uint64_t N) {
  BlockingClient Client;
  EXPECT_TRUE(Client.connectTo(Port));
  for (uint64_t I = 0; I != N; ++I) {
    WireRequest Req;
    Req.Index = I;
    EXPECT_TRUE(Client.sendRequest(Req));
  }
  std::map<uint64_t, WireResponse> ByIndex;
  for (uint64_t I = 0; I != N; ++I) {
    WireResponse R;
    if (!Client.recvResponse(R, /*TimeoutMillis=*/30000)) {
      ADD_FAILURE() << "response " << I << " never arrived";
      break;
    }
    ByIndex[R.Index] = R;
  }
  return ByIndex;
}

TEST(ShardProcessTest, ProcessModeMatchesThreadModeBitForBit) {
  constexpr uint64_t N = 48;
  Module M("shardproc");
  buildRandModule(M);
  installServerSignalDefaults();

  std::map<uint64_t, WireResponse> PerMode[2];
  DrainReport Reports[2];
  const ShardMode Modes[] = {ShardMode::Thread, ShardMode::Process};
  for (unsigned I = 0; I != 2; ++I) {
    SocketServer Server(M, shardServerOptions(2, Modes[I]));
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    PerMode[I] = serveAll(Server.port(), N);
    Reports[I] = Server.drain();
    ASSERT_TRUE(Reports[I].Clean);
    ASSERT_TRUE(Reports[I].IdentityOk);
  }

  ASSERT_EQ(PerMode[1].size(), PerMode[0].size());
  for (const auto &[Index, RT] : PerMode[0]) {
    const WireResponse &RP = PerMode[1].at(Index);
    EXPECT_EQ(RP.Status, RT.Status) << Index;
    EXPECT_EQ(RP.Trap, RT.Trap) << Index;
    EXPECT_EQ(RP.ReturnValue, RT.ReturnValue) << Index;
    EXPECT_EQ(RP.Steps, RT.Steps) << Index;
    EXPECT_EQ(RP.Attempts, RT.Attempts) << Index;
  }

  // The aggregate books survive the IPC round trip: the parent rebuilds
  // them from per-request deltas, and the rebuilt ledger must equal the
  // in-process merge field for field.
  EXPECT_EQ(Reports[1].Pool.Requests, Reports[0].Pool.Requests);
  EXPECT_EQ(Reports[1].Pool.Completed, Reports[0].Pool.Completed);
  EXPECT_EQ(Reports[1].Pool.Submitted, Reports[0].Pool.Submitted);
  EXPECT_EQ(Reports[1].Pool.Rng.DrawsServed, Reports[0].Pool.Rng.DrawsServed);
  EXPECT_EQ(Reports[1].Pool.Rng.AesRekeys, Reports[0].Pool.Rng.AesRekeys);

  // Sorted outcome streams are bit-identical too.
  ASSERT_EQ(Reports[1].Outcomes.size(), Reports[0].Outcomes.size());
  for (size_t I = 0; I != Reports[0].Outcomes.size(); ++I) {
    EXPECT_EQ(Reports[1].Outcomes[I].Index, Reports[0].Outcomes[I].Index);
    EXPECT_EQ(Reports[1].Outcomes[I].ReturnValue,
              Reports[0].Outcomes[I].ReturnValue);
    EXPECT_EQ(Reports[1].Outcomes[I].Steps, Reports[0].Outcomes[I].Steps);
  }

  // No chaos here: the process pass must not have restarted anything.
  EXPECT_EQ(Reports[1].Net.ShardDeaths, 0u);
  EXPECT_EQ(Reports[1].Net.ShardRestarts, 0u);
}

TEST(ShardProcessTest, SigkillShardReplaysInFlightBitForBit) {
  constexpr uint64_t N = 48;
  Module M("shardproc");
  buildRandModule(M);
  installServerSignalDefaults();

  // The reference: the same campaign in thread mode.
  SocketServer RefServer(M, shardServerOptions(1, ShardMode::Thread));
  std::string Err;
  ASSERT_TRUE(RefServer.start(&Err)) << Err;
  std::map<uint64_t, WireResponse> Ref = serveAll(RefServer.port(), N);
  DrainReport RefRep = RefServer.drain();
  ASSERT_TRUE(RefRep.Clean);

  // Process mode with a scripted kill: from the 32nd admitted request on,
  // every ShardKill probe fires, so the shard child is SIGKILLed with the
  // pipelined window still in flight — forcing at least one re-fork and
  // replay while requests are outstanding.
  ServerOptions SO = shardServerOptions(1, ShardMode::Process);
  SO.InjectNetFaults = true;
  SO.NetFaultPlan.Seed = 99;
  SO.NetFaultPlan.site(FaultSite::ShardKill) = {0.0, 1, /*FailFromProbe=*/32};
  SocketServer Server(M, SO);
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::map<uint64_t, WireResponse> Got = serveAll(Server.port(), N);
  DrainReport Rep = Server.drain();

  // Every response arrived, served, and bit-identical to thread mode —
  // the kills are invisible outside the lifecycle counters.
  ASSERT_EQ(Got.size(), N);
  for (const auto &[Index, RT] : Ref) {
    const WireResponse &RP = Got.at(Index);
    EXPECT_EQ(RP.Status, RT.Status) << Index;
    EXPECT_EQ(RP.ReturnValue, RT.ReturnValue) << Index;
    EXPECT_EQ(RP.Steps, RT.Steps) << Index;
    EXPECT_EQ(RP.Attempts, RT.Attempts) << Index;
  }

  EXPECT_TRUE(Rep.Clean);
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Pool.Completed, N);
  EXPECT_EQ(Rep.Pool.Poisoned, 0u);
  EXPECT_GE(Rep.Net.ShardKillFaults, 1u) << "the scripted kill never fired";
  EXPECT_GE(Rep.Net.ShardDeaths, 1u);
  EXPECT_GE(Rep.Net.ShardRestarts, 1u) << "the killed shard never re-forked";
  EXPECT_EQ(Rep.Net.ShardDeaths, Rep.Net.ShardRestarts)
      << "every death within the budget must re-fork";
  EXPECT_GE(Rep.Net.ShardReplays, 1u)
      << "a kill with requests in flight must replay them";
  EXPECT_EQ(Rep.Net.ResponsesDelivered, N);
  EXPECT_EQ(Rep.Net.ResponsesOrphaned, 0u);
}

TEST(ShardProcessTest, ExhaustedRestartBudgetPoisonsInFlightWithExactBooks) {
  constexpr uint64_t N = 32;
  Module M("shardproc");
  buildRandModule(M);
  installServerSignalDefaults();

  // Budget 0: the first kill retires the shard. Everything still cached
  // is poisoned (PoisonedPoolDeath, the same class thread mode books when
  // a pool dies under its backlog) and still answered — the wire
  // accounting identity must hold even with a permanently dead shard.
  ServerOptions SO = shardServerOptions(1, ShardMode::Process);
  SO.ShardRestartBudget = 0;
  SO.InjectNetFaults = true;
  SO.NetFaultPlan.Seed = 99;
  SO.NetFaultPlan.site(FaultSite::ShardKill) = {0.0, 1, /*FailFromProbe=*/16};
  SocketServer Server(M, SO);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::map<uint64_t, WireResponse> Got = serveAll(Server.port(), N);
  DrainReport Rep = Server.drain();

  ASSERT_EQ(Got.size(), N);
  uint64_t Ok = 0, Poisoned = 0, Shed = 0;
  for (const auto &[Index, R] : Got) {
    switch (R.Status) {
    case WireStatus::Ok:
      ++Ok;
      break;
    case WireStatus::Poisoned:
      ++Poisoned;
      break;
    case WireStatus::Shed:
      ++Shed;
      break;
    default:
      ADD_FAILURE() << "unexpected status for " << Index;
    }
  }
  (void)Ok; // how many served before the kill is scheduling-dependent
  EXPECT_GT(Poisoned + Shed, 0u)
      << "a permanently dead shard must poison or shed, not serve, the rest";
  EXPECT_TRUE(Rep.IdentityOk)
      << "Submitted == Completed + Shed + Poisoned across the retirement";
  EXPECT_EQ(Rep.Net.ShardDeaths, 1u);
  EXPECT_EQ(Rep.Net.ShardRestarts, 0u) << "budget 0 never re-forks";
  EXPECT_EQ(Rep.Pool.Poisoned, Poisoned);
  EXPECT_EQ(Rep.Pool.PoisonedPoolDeath, Poisoned);
  EXPECT_EQ(Rep.Pool.Completed + Rep.Pool.Shed + Rep.Pool.Poisoned,
            Rep.Pool.Submitted);
}

} // namespace
