//===- tests/net/SocketServerTest.cpp - socket front-end tests ------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving front-end's contract over real loopback sockets: wire
// outcomes are bit-identical to the in-process WorkerPool at any shard
// count; every malformed byte stream is an accounted protocol error that
// kills one connection and nothing else; deadlines reject at admission;
// backpressure sheds with exact books; a hung request is poisoned by the
// drain-timeout escalation; and the wire accounting identity holds at the
// end of every scenario, friendly or hostile.
//
//===----------------------------------------------------------------------===//

#include "net/SocketServer.h"

#include "ir/IRBuilder.h"
#include "net/Client.h"
#include "net/ShardRouter.h"

#include "gtest/gtest.h"

#include <chrono>
#include <map>
#include <thread>

using namespace smokestack;

namespace {

void sleepMillis(unsigned Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

/// driver(): folds two smokestack.rand draws into a byte — the per-request
/// RNG chain makes the return value a pure function of (RootSeed, Index),
/// which is what the wire-vs-in-process comparisons key on.
void buildRandModule(Module &M) {
  IRBuilder B(M);
  Function *Rand = M.getOrInsertDeclaration("smokestack.rand", B.i64(), {});
  Function *Driver = M.createFunction("driver", B.i64(), {});
  B.setInsertPoint(Driver->createBlock("entry"));
  Value *A = B.call(Rand, {});
  Value *C = B.call(Rand, {});
  B.ret(B.and_(B.add(A, C), B.constI64(0xff)));
}

/// spin(): a counted loop; with a huge count it hangs until the fuel
/// budget or a cooperative cancel ends it (the drain-timeout test).
void buildSpinModule(Module &M, uint64_t Iterations) {
  IRBuilder B(M);
  Function *F = M.createFunction("spin", B.i64(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Done = F->createBlock("done");
  B.setInsertPoint(Entry);
  AllocaInst *Ctr = B.alloca_(B.i64(), "ctr");
  B.store(B.constI64(0), Ctr);
  B.br(Loop);
  B.setInsertPoint(Loop);
  Value *V = B.load(B.i64(), Ctr);
  Value *Next = B.add(V, B.constI64(1));
  B.store(Next, Ctr);
  B.condBr(B.icmp(ICmpInst::Predicate::ULT, Next, B.constI64(Iterations)),
           Loop, Done);
  B.setInsertPoint(Done);
  B.ret(B.constI64(13));
}

ServerOptions randServerOptions(unsigned Shards) {
  ServerOptions Opts;
  Opts.Shards = Shards;
  Opts.Pool.Workers = 2;
  Opts.Pool.RootSeed = 7;
  Opts.Pool.Function = "driver";
  return Opts;
}

/// Sends indices [0, N) pipelined on one connection and returns the
/// responses keyed by index (completion order is scheduling-dependent).
std::map<uint64_t, WireResponse> serveAll(uint16_t Port, uint64_t N) {
  BlockingClient Client;
  EXPECT_TRUE(Client.connectTo(Port));
  for (uint64_t I = 0; I != N; ++I) {
    WireRequest Req;
    Req.Index = I;
    EXPECT_TRUE(Client.sendRequest(Req));
  }
  std::map<uint64_t, WireResponse> ByIndex;
  for (uint64_t I = 0; I != N; ++I) {
    WireResponse R;
    if (!Client.recvResponse(R)) {
      ADD_FAILURE() << "response " << I << " never arrived";
      break;
    }
    ByIndex[R.Index] = R;
  }
  return ByIndex;
}

TEST(SocketServerTest, RoundTripMatchesInProcessPool) {
  constexpr uint64_t N = 32;
  Module M("net");
  buildRandModule(M);

  // The in-process reference: same module, options, and request stream.
  PoolOptions Ref;
  Ref.Workers = 2;
  Ref.RootSeed = 7;
  Ref.Function = "driver";
  WorkerPool Pool(M, Ref);
  Pool.start();
  for (uint64_t I = 0; I != N; ++I)
    Pool.submit({I, {}});
  std::vector<PoolOutcome> Expected = Pool.finish();
  ASSERT_EQ(Expected.size(), N);

  SocketServer Server(M, randServerOptions(1));
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  std::map<uint64_t, WireResponse> Got = serveAll(Server.port(), N);

  ASSERT_EQ(Got.size(), N);
  for (const PoolOutcome &O : Expected) {
    const WireResponse &R = Got.at(O.Index);
    EXPECT_EQ(R.Status, WireStatus::Ok) << O.Index;
    EXPECT_EQ(R.Trap, TrapKind::None) << O.Index;
    EXPECT_EQ(R.ReturnValue, O.ReturnValue) << O.Index;
    EXPECT_EQ(R.Steps, O.Steps) << O.Index;
    EXPECT_EQ(R.Attempts, O.Attempts) << O.Index;
  }

  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.Clean);
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Net.FramesDecoded, N);
  EXPECT_EQ(Rep.Net.RequestsAdmitted, N);
  EXPECT_EQ(Rep.Net.ResponsesDelivered, N);
  EXPECT_EQ(Rep.Net.ResponsesOrphaned, 0u);
  EXPECT_EQ(Rep.Net.ProtocolErrors, 0u);
  EXPECT_EQ(Rep.Pool.Completed, N);

  // The drain report's sorted outcomes match the reference bit for bit.
  ASSERT_EQ(Rep.Outcomes.size(), N);
  for (uint64_t I = 0; I != N; ++I) {
    EXPECT_EQ(Rep.Outcomes[I].Index, Expected[I].Index);
    EXPECT_EQ(Rep.Outcomes[I].ReturnValue, Expected[I].ReturnValue);
    EXPECT_EQ(Rep.Outcomes[I].Steps, Expected[I].Steps);
  }
}

TEST(SocketServerTest, ShardCountIsInvisibleToResults) {
  constexpr uint64_t N = 48;
  Module M("net");
  buildRandModule(M);

  std::map<uint64_t, WireResponse> PerShardCount[3];
  DrainReport Reports[3];
  const unsigned ShardCounts[] = {1, 2, 4};
  for (unsigned S = 0; S != 3; ++S) {
    SocketServer Server(M, randServerOptions(ShardCounts[S]));
    std::string Err;
    ASSERT_TRUE(Server.start(&Err)) << Err;
    PerShardCount[S] = serveAll(Server.port(), N);
    Reports[S] = Server.drain();
    ASSERT_TRUE(Reports[S].Clean);
    ASSERT_TRUE(Reports[S].IdentityOk);
    ASSERT_EQ(Reports[S].PerShard.size(), ShardCounts[S]);
  }

  for (unsigned S = 1; S != 3; ++S) {
    ASSERT_EQ(PerShardCount[S].size(), PerShardCount[0].size());
    for (const auto &[Index, R0] : PerShardCount[0]) {
      const WireResponse &RS = PerShardCount[S].at(Index);
      EXPECT_EQ(RS.Status, R0.Status) << Index;
      EXPECT_EQ(RS.ReturnValue, R0.ReturnValue) << Index;
      EXPECT_EQ(RS.Steps, R0.Steps) << Index;
      EXPECT_EQ(RS.Attempts, R0.Attempts) << Index;
    }
    // Aggregate books are shard-invariant too (the merge identity).
    EXPECT_EQ(Reports[S].Pool.Requests, Reports[0].Pool.Requests);
    EXPECT_EQ(Reports[S].Pool.Completed, Reports[0].Pool.Completed);
    EXPECT_EQ(Reports[S].Pool.Rng.DrawsServed, Reports[0].Pool.Rng.DrawsServed);
  }

  // Sanity: at 4 shards the router actually spread the load.
  uint64_t NonEmpty = 0;
  for (const PoolBooks &B : Reports[2].PerShard)
    NonEmpty += B.Requests != 0;
  EXPECT_GT(NonEmpty, 1u) << "router sent everything to one shard";
}

TEST(SocketServerTest, ShardRouterIsDeterministic) {
  for (uint64_t Index = 0; Index != 1000; ++Index) {
    unsigned A = shardForRequest(7, Index, 4);
    unsigned B = shardForRequest(7, Index, 4);
    EXPECT_EQ(A, B);
    EXPECT_LT(A, 4u);
    EXPECT_EQ(shardForRequest(7, Index, 1), 0u);
  }
}

TEST(SocketServerTest, MalformedStreamsAreAccountedPerClass) {
  Module M("net");
  buildRandModule(M);
  SocketServer Server(M, randServerOptions(1));
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  auto expectErrorNotice = [](BlockingClient &C) {
    WireResponse R;
    ASSERT_TRUE(C.recvResponse(R));
    EXPECT_EQ(R.Status, WireStatus::ProtocolError);
    // The server then closes: wait for the FIN.
    while (!C.peerClosed())
      if (!C.recvResponse(R))
        break;
  };

  { // Zero-length prefix.
    BlockingClient C;
    ASSERT_TRUE(C.connectTo(Server.port()));
    uint8_t Zero[4] = {0, 0, 0, 0};
    ASSERT_TRUE(C.sendBytes(Zero, sizeof Zero));
    expectErrorNotice(C);
  }
  { // Oversize prefix.
    BlockingClient C;
    ASSERT_TRUE(C.connectTo(Server.port()));
    uint8_t Huge[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_TRUE(C.sendBytes(Huge, sizeof Huge));
    expectErrorNotice(C);
  }
  { // Garbage payload: well-framed, fails the schema.
    BlockingClient C;
    ASSERT_TRUE(C.connectTo(Server.port()));
    uint8_t Frame[12] = {8, 0, 0, 0, 'g', 'a', 'r', 'b', 'a', 'g', 'e', '!'};
    ASSERT_TRUE(C.sendBytes(Frame, sizeof Frame));
    expectErrorNotice(C);
  }
  { // Truncated: close mid-frame.
    BlockingClient C;
    ASSERT_TRUE(C.connectTo(Server.port()));
    uint8_t Partial[6] = {100, 0, 0, 0, 1, 2};
    ASSERT_TRUE(C.sendBytes(Partial, sizeof Partial));
    C.closeConn();
  }
  { // A valid request on a fresh connection still works afterwards: a
    // hostile connection must not poison its neighbours.
    BlockingClient C;
    ASSERT_TRUE(C.connectTo(Server.port()));
    WireRequest Req;
    Req.Index = 99;
    ASSERT_TRUE(C.sendRequest(Req));
    WireResponse R;
    ASSERT_TRUE(C.recvResponse(R));
    EXPECT_EQ(R.Index, 99u);
    EXPECT_EQ(R.Status, WireStatus::Ok);
  }

  // The truncated close races the drain: wait for the books to settle.
  sleepMillis(100);
  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Net.FrameZeroLength, 1u);
  EXPECT_EQ(Rep.Net.FrameOversize, 1u);
  EXPECT_EQ(Rep.Net.BadPayload, 1u);
  EXPECT_EQ(Rep.Net.FrameTruncated, 1u);
  EXPECT_EQ(Rep.Net.ProtocolErrors, 4u);
  EXPECT_EQ(Rep.Net.RequestsAdmitted, 1u);
  EXPECT_EQ(Rep.Net.ResponsesDelivered, 1u);
}

TEST(SocketServerTest, DuplicateInFlightIndexIsAProtocolError) {
  // Two frames with the same index pipelined in one write: the first is
  // admitted, the second is caught while the first is still in flight
  // (both decode in the same read pump, before any completion can drain).
  Module M("net");
  buildRandModule(M);
  SocketServer Server(M, randServerOptions(1));
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  BlockingClient C;
  ASSERT_TRUE(C.connectTo(Server.port()));
  WireRequest Req;
  Req.Index = 5;
  std::vector<uint8_t> F = encodeRequestFrame(Req);
  std::vector<uint8_t> Both = F;
  Both.insert(Both.end(), F.begin(), F.end());
  ASSERT_TRUE(C.sendBytes(Both.data(), Both.size()));

  // Expect exactly two responses: the protocol-error notice and the first
  // request's real answer (order depends on completion timing).
  bool SawError = false, SawAnswer = false;
  for (unsigned I = 0; I != 2; ++I) {
    WireResponse R;
    ASSERT_TRUE(C.recvResponse(R));
    if (R.Status == WireStatus::ProtocolError)
      SawError = true;
    else if (R.Index == 5 && R.Status == WireStatus::Ok)
      SawAnswer = true;
  }
  EXPECT_TRUE(SawError);
  EXPECT_TRUE(SawAnswer);

  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Net.BadPayload, 1u);
  EXPECT_EQ(Rep.Net.RequestsAdmitted, 1u);
}

TEST(SocketServerTest, ExpiredDeadlineRejectsAtAdmission) {
  Module M("net");
  buildRandModule(M);
  SocketServer Server(M, randServerOptions(1));
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  // The deadline clock starts at the frame's first byte: send half the
  // frame, stall past the deadline, then complete it.
  WireRequest Req;
  Req.Index = 1;
  Req.DeadlineMillis = 50;
  std::vector<uint8_t> F = encodeRequestFrame(Req);
  BlockingClient C;
  ASSERT_TRUE(C.connectTo(Server.port()));
  size_t Half = F.size() / 2;
  ASSERT_TRUE(C.sendBytes(F.data(), Half));
  sleepMillis(200);
  ASSERT_TRUE(C.sendBytes(F.data() + Half, F.size() - Half));

  WireResponse R;
  ASSERT_TRUE(C.recvResponse(R));
  EXPECT_EQ(R.Index, 1u);
  EXPECT_EQ(R.Status, WireStatus::DeadlineExpired);

  // A generous deadline on the same connection is served normally.
  Req.Index = 2;
  Req.DeadlineMillis = 60000;
  ASSERT_TRUE(C.sendRequest(Req));
  ASSERT_TRUE(C.recvResponse(R));
  EXPECT_EQ(R.Index, 2u);
  EXPECT_EQ(R.Status, WireStatus::Ok);
  EXPECT_EQ(R.Flags & RespFlagDeadlineMissed, 0u);

  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Net.DeadlineRejected, 1u);
  EXPECT_EQ(Rep.Net.RequestsAdmitted, 1u);
  EXPECT_EQ(Rep.Net.ResponsesDelivered, 2u);
  EXPECT_EQ(Rep.Pool.Submitted, 1u) << "expired request must not hit a shard";
}

TEST(SocketServerTest, OverloadShedsWithExactBooks) {
  // One worker, a one-slot queue, and a slow request: flooding the server
  // must produce Shed responses, not unbounded buffering — and the wire
  // books must balance exactly even though which requests shed is racy.
  constexpr uint64_t N = 32;
  Module M("net");
  buildSpinModule(M, 200'000);
  ServerOptions Opts;
  Opts.Shards = 1;
  Opts.Pool.Workers = 1;
  Opts.Pool.QueueCapacity = 1;
  Opts.Pool.Function = "spin";
  SocketServer Server(M, Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  BlockingClient C;
  ASSERT_TRUE(C.connectTo(Server.port()));
  for (uint64_t I = 0; I != N; ++I) {
    WireRequest Req;
    Req.Index = I;
    ASSERT_TRUE(C.sendRequest(Req));
  }
  uint64_t Served = 0, Shed = 0;
  for (uint64_t I = 0; I != N; ++I) {
    WireResponse R;
    ASSERT_TRUE(C.recvResponse(R)) << "response " << I;
    if (R.Status == WireStatus::Shed)
      ++Shed;
    else if (R.Status == WireStatus::Ok) {
      EXPECT_EQ(R.ReturnValue, 13u);
      ++Served;
    }
  }
  EXPECT_EQ(Served + Shed, N);
  EXPECT_GT(Shed, 0u) << "the flood never overflowed a one-slot queue";
  EXPECT_GT(Served, 0u);

  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Net.WireShed, Shed);
  EXPECT_EQ(Rep.Net.RequestsAdmitted, Served);
  EXPECT_EQ(Rep.Net.ResponsesDelivered, N);
  EXPECT_EQ(Rep.Pool.ShedQueueFull, Shed);
}

TEST(SocketServerTest, DrainTimeoutPoisonsHungRequests) {
  // A request that never finishes on its own: drain()'s budget expires,
  // the escalation cancels it, and the books say so — Clean = false,
  // poisoned once, identity still exact.
  Module M("net");
  buildSpinModule(M, ~0ULL >> 8);
  ServerOptions Opts;
  Opts.Shards = 1;
  Opts.Pool.Workers = 1;
  Opts.Pool.Function = "spin";
  // Effectively infinite fuel: cancellation must be the only way out.
  Opts.Pool.InterpOpts.Fuel = 1ULL << 62;
  Opts.DrainTimeoutMillis = 100;
  SocketServer Server(M, Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  BlockingClient C;
  ASSERT_TRUE(C.connectTo(Server.port()));
  WireRequest Req;
  Req.Index = 0;
  ASSERT_TRUE(C.sendRequest(Req));
  sleepMillis(100); // let it be admitted and start spinning

  DrainReport Rep = Server.drain();
  EXPECT_FALSE(Rep.Clean);
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Pool.Poisoned, 1u);
  EXPECT_EQ(Rep.Pool.PoisonedPoolDeath, 1u);
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_TRUE(Rep.Outcomes[0].Poisoned);

  // The poisoned verdict is still delivered to the waiting client during
  // the flush phase (a drain is graceful to readers even when the work
  // had to be shot).
  WireResponse R;
  if (C.recvResponse(R, 2000)) {
    EXPECT_EQ(R.Status, WireStatus::Poisoned);
    EXPECT_EQ(Rep.Net.ResponsesDelivered, 1u);
  } else {
    EXPECT_EQ(Rep.Net.ResponsesOrphaned, 1u);
  }
}

TEST(SocketServerTest, IdleConnectionsAreReaped) {
  Module M("net");
  buildRandModule(M);
  ServerOptions Opts = randServerOptions(1);
  Opts.IdleTimeoutMillis = 50;
  SocketServer Server(M, Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  BlockingClient C;
  ASSERT_TRUE(C.connectTo(Server.port()));
  // Say nothing; the reaper should close us within a few sweep periods.
  WireResponse R;
  bool Closed = false;
  for (unsigned I = 0; I != 40 && !Closed; ++I) {
    (void)C.recvResponse(R, 100);
    Closed = C.peerClosed();
  }
  EXPECT_TRUE(Closed);

  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Net.IdleReaped, 1u);
  EXPECT_EQ(Rep.Net.ConnectionsClosed, 1u);
}

TEST(SocketServerTest, ClientResetOrphansItsResponses) {
  // The client dies (RST) while its request is being served: the
  // completion finds no connection and is booked Orphaned, keeping
  // Delivered + Orphaned == Admitted exact.
  Module M("net");
  buildSpinModule(M, 3'000'000);
  ServerOptions Opts;
  Opts.Shards = 1;
  Opts.Pool.Workers = 1;
  Opts.Pool.Function = "spin";
  SocketServer Server(M, Opts);
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;

  BlockingClient C;
  ASSERT_TRUE(C.connectTo(Server.port()));
  WireRequest Req;
  Req.Index = 0;
  ASSERT_TRUE(C.sendRequest(Req));
  sleepMillis(30); // admitted, still spinning
  C.resetConn();

  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.IdentityOk);
  EXPECT_EQ(Rep.Net.RequestsAdmitted, 1u);
  EXPECT_EQ(Rep.Net.ResponsesDelivered + Rep.Net.ResponsesOrphaned, 1u);
  EXPECT_EQ(Rep.Pool.Completed, 1u) << "the work itself still completes";
}

TEST(SocketServerTest, RequestStopIsObservable) {
  Module M("net");
  buildRandModule(M);
  SocketServer Server(M, randServerOptions(1));
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  EXPECT_FALSE(Server.stopRequested());
  Server.requestStop();
  EXPECT_TRUE(Server.stopRequested());
  DrainReport Rep = Server.drain();
  EXPECT_TRUE(Rep.Clean);
  EXPECT_TRUE(Rep.IdentityOk);
}

TEST(SocketServerTest, DrainIsIdempotent) {
  Module M("net");
  buildRandModule(M);
  SocketServer Server(M, randServerOptions(2));
  std::string Err;
  ASSERT_TRUE(Server.start(&Err)) << Err;
  serveAll(Server.port(), 8);
  DrainReport A = Server.drain();
  DrainReport B = Server.drain();
  EXPECT_EQ(A.Net.FramesDecoded, B.Net.FramesDecoded);
  EXPECT_EQ(A.Outcomes.size(), B.Outcomes.size());
  EXPECT_TRUE(B.IdentityOk);
}

} // namespace
