//===- tests/obs/HistogramTest.cpp - Log2 histogram tests ----------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace smokestack;

TEST(HistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(255), 8u);
  EXPECT_EQ(Histogram::bucketIndex(256), 9u);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), 64u);
}

TEST(HistogramTest, BucketUpperBounds) {
  // Bucket i holds values of bit width i, so its inclusive upper bound is
  // 2^i - 1; the last bucket absorbs everything up to UINT64_MAX.
  EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::bucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::bucketUpperBound(63), UINT64_MAX / 2);
  EXPECT_EQ(Histogram::bucketUpperBound(64), UINT64_MAX);
  // Every value lands in the bucket whose bound covers it.
  for (uint64_t V : {0ull, 1ull, 2ull, 7ull, 8ull, 1000ull, 123456789ull})
    EXPECT_GE(Histogram::bucketUpperBound(Histogram::bucketIndex(V)), V);
}

namespace {
Histogram TestHist("test.obs-histogram", "histogram used by this test");
} // namespace

TEST(HistogramTest, RecordSnapshotReset) {
  TestHist.reset();
  TestHist.record(0);
  TestHist.record(1);
  TestHist.record(5);
  TestHist.record(5);
  TestHist.record(1000);

  Histogram::Snapshot S = TestHist.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 1011u);
  EXPECT_EQ(S.Buckets[0], 1u);  // {0}
  EXPECT_EQ(S.Buckets[1], 1u);  // {1}
  EXPECT_EQ(S.Buckets[3], 2u);  // {4..7}
  EXPECT_EQ(S.Buckets[10], 1u); // {512..1023}

  TestHist.reset();
  S = TestHist.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Sum, 0u);
}

TEST(HistogramTest, PercentilesReportBucketUpperBounds) {
  TestHist.reset();
  // Nine zeros and one 1000: the median sits in bucket 0, the tail in the
  // {512..1023} bucket, so p95/p99 report that bucket's upper bound.
  for (int I = 0; I != 9; ++I)
    TestHist.record(0);
  TestHist.record(1000);

  Histogram::Snapshot S = TestHist.snapshot();
  EXPECT_EQ(S.p50(), 0u);
  EXPECT_EQ(S.p95(), 1023u);
  EXPECT_EQ(S.p99(), 1023u);
  EXPECT_EQ(S.percentile(0.90), 0u); // rank 9 is still a zero

  // An empty histogram reports 0 for every percentile.
  TestHist.reset();
  EXPECT_EQ(TestHist.snapshot().p50(), 0u);
  EXPECT_EQ(TestHist.snapshot().p99(), 0u);
}

TEST(HistogramTest, Registry) {
  Histogram *Found = findHistogram("test.obs-histogram");
  ASSERT_EQ(Found, &TestHist);
  EXPECT_STREQ(Found->description(), "histogram used by this test");
  EXPECT_EQ(findHistogram("no.such.histogram"), nullptr);

  bool Seen = false;
  for (Histogram *H : allHistograms())
    Seen |= H == &TestHist;
  EXPECT_TRUE(Seen);
}

TEST(HistogramTest, ConcurrentRecordingIsLossless) {
  // The sharded-atomic contract, mirrored from Statistic: N threads
  // hammering the same histogram lose no samples and no sum (snapshot()
  // merges the shards). Run under TSan, this is also the data-race check
  // for the record()/snapshot() pairing.
  TestHist.reset();
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        TestHist.record(T); // thread T fills bucket bit_width(T)
    });
  for (std::thread &T : Threads)
    T.join();

  Histogram::Snapshot S = TestHist.snapshot();
  EXPECT_EQ(S.Count, NumThreads * PerThread);
  uint64_t WantSum = 0;
  for (unsigned T = 0; T != NumThreads; ++T)
    WantSum += T * PerThread;
  EXPECT_EQ(S.Sum, WantSum);
  // Values 0..7 span buckets 0..3; nothing may leak elsewhere.
  EXPECT_EQ(S.Buckets[0] + S.Buckets[1] + S.Buckets[2] + S.Buckets[3],
            NumThreads * PerThread);
  TestHist.reset();
}
