//===- tests/obs/MetricsExportTest.cpp - Golden exporter tests -----------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the exact bytes of both export formats against golden files in
/// tests/obs/golden/. The registry is built with IncludeGlobals=false and
/// fully deterministic contents, so any byte drift is a deliberate format
/// change: regenerate with
///
///   SMOKESTACK_UPDATE_GOLDEN=1 ./tests/ss_obs_tests
///       --gtest_filter='MetricsExportTest.*'
///
/// and review the diff like any other API change.
///
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"

#include "obs/Histogram.h"

#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>

using namespace smokestack;

namespace {

Histogram GoldenHist("test.golden-histogram", "histogram pinned by goldens");

/// The fixed registry every golden test exports: two gauges (registered
/// out of name order to prove the exporters sort) plus one histogram with
/// a hand-checkable distribution.
MetricsRegistry buildGoldenRegistry() {
  GoldenHist.reset();
  GoldenHist.record(0);
  GoldenHist.record(1);
  GoldenHist.record(5);
  GoldenHist.record(5);
  GoldenHist.record(1000);
  GoldenHist.record(123456789);

  MetricsRegistry Reg(/*IncludeGlobals=*/false);
  Reg.addGauge("test.golden.z-last", "registered first, sorted last", 7);
  Reg.addGauge("test.golden.a-first", "registered last, sorted first", 42);
  Reg.addHistogram(&GoldenHist);
  return Reg;
}

std::string goldenPath(const char *File) {
  return std::string(SMOKESTACK_OBS_GOLDEN_DIR) + "/" + File;
}

std::string readFile(const std::string &Path) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In)
    return {};
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) != 0)
    Text.append(Buf, N);
  std::fclose(In);
  return Text;
}

void checkGolden(const char *File, const std::string &Actual) {
  std::string Path = goldenPath(File);
  if (std::getenv("SMOKESTACK_UPDATE_GOLDEN")) {
    std::FILE *Out = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(Out, nullptr) << "cannot write " << Path;
    std::fwrite(Actual.data(), 1, Actual.size(), Out);
    std::fclose(Out);
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::string Want = readFile(Path);
  ASSERT_FALSE(Want.empty()) << "missing golden file " << Path
                             << " (set SMOKESTACK_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(Actual, Want) << "export drifted from " << Path;
}

} // namespace

TEST(MetricsExportTest, PrometheusTextMatchesGolden) {
  checkGolden("metrics.prom", buildGoldenRegistry().exportText());
}

TEST(MetricsExportTest, JsonMatchesGolden) {
  checkGolden("metrics.json", buildGoldenRegistry().exportJson());
}

TEST(MetricsExportTest, EmptyRegistryStaysWellFormed) {
  MetricsRegistry Reg(/*IncludeGlobals=*/false);
  EXPECT_EQ(Reg.exportText(), "");
  EXPECT_EQ(Reg.exportJson(),
            "{\n  \"schema\": \"smokestack-metrics-v1\",\n"
            "  \"counters\": [],\n  \"gauges\": [],\n"
            "  \"histograms\": []\n}\n");
}
