//===- tests/obs/TraceTest.cpp - Span ring and recorder tests ------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/MetricsRegistry.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace smokestack;

namespace {

TraceSpan span(uint64_t Index, SpanDisposition D = SpanDisposition::Completed,
               uint32_t Attempt = 1) {
  TraceSpan S;
  S.RequestIndex = Index;
  S.Attempt = Attempt;
  S.Disposition = D;
  return S;
}

} // namespace

TEST(TraceRingTest, PushDrainPreservesOrder) {
  TraceRing Ring(8);
  EXPECT_EQ(Ring.capacity(), 8u);
  for (uint64_t I = 0; I != 5; ++I)
    EXPECT_TRUE(Ring.push(span(I)));

  std::vector<TraceSpan> Out;
  EXPECT_EQ(Ring.drainInto(Out), 5u);
  ASSERT_EQ(Out.size(), 5u);
  for (uint64_t I = 0; I != 5; ++I)
    EXPECT_EQ(Out[I].RequestIndex, I);
  EXPECT_EQ(Ring.dropped(), 0u);

  // A drained ring is empty again.
  Out.clear();
  EXPECT_EQ(Ring.drainInto(Out), 0u);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(16).capacity(), 16u);
  // Degenerate capacities are clamped so the ring always holds something.
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
}

TEST(TraceRingTest, WraparoundReusesSlots) {
  // Fill-drain cycles push the monotonic positions far past the slot
  // count; the masked indices must keep landing on valid slots with
  // contents intact.
  TraceRing Ring(4);
  std::vector<TraceSpan> Out;
  for (uint64_t Cycle = 0; Cycle != 10; ++Cycle) {
    for (uint64_t I = 0; I != 4; ++I)
      EXPECT_TRUE(Ring.push(span(Cycle * 4 + I)));
    Out.clear();
    EXPECT_EQ(Ring.drainInto(Out), 4u);
    for (uint64_t I = 0; I != 4; ++I)
      EXPECT_EQ(Out[I].RequestIndex, Cycle * 4 + I);
  }
  EXPECT_EQ(Ring.dropped(), 0u);
}

TEST(TraceRingTest, FullRingDropsNewestAndCounts) {
  TraceRing Ring(4);
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_TRUE(Ring.push(span(I)));
  // The ring is full: pushes drop (never block) and are counted.
  EXPECT_FALSE(Ring.push(span(100)));
  EXPECT_FALSE(Ring.push(span(101)));
  EXPECT_EQ(Ring.dropped(), 2u);

  // The four accepted spans survive untouched.
  std::vector<TraceSpan> Out;
  EXPECT_EQ(Ring.drainInto(Out), 4u);
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_EQ(Out[I].RequestIndex, I);

  // With space freed, pushes succeed again; the drop count is sticky.
  EXPECT_TRUE(Ring.push(span(200)));
  EXPECT_EQ(Ring.dropped(), 2u);
}

TEST(TraceRingTest, ConcurrentProducerConsumerIsLossless) {
  // The SPSC contract under real concurrency (and under TSan, the
  // acquire/release pairing check): one producer spinning on a small ring,
  // one consumer draining, nothing lost and order preserved. The producer
  // retries full-ring pushes, so every span must come through exactly
  // once, in index order.
  constexpr uint64_t NumSpans = 50000;
  TraceRing Ring(64);
  std::vector<TraceSpan> Got;
  Got.reserve(NumSpans);

  std::thread Consumer([&] {
    while (Got.size() < NumSpans)
      Ring.drainInto(Got);
  });
  for (uint64_t I = 0; I != NumSpans; ++I)
    while (!Ring.push(span(I)))
      std::this_thread::yield();
  Consumer.join();

  ASSERT_EQ(Got.size(), NumSpans);
  for (uint64_t I = 0; I != NumSpans; ++I)
    EXPECT_EQ(Got[I].RequestIndex, I);
}

TEST(TraceRecorderTest, CollectDrainsEveryRingAndTakeSorts) {
  TraceRecorder Rec;
  // Two workers' rings plus one supervisor-side record, interleaved across
  // request indices and attempts.
  Rec.ringFor(0).push(span(3, SpanDisposition::Completed));
  Rec.ringFor(1).push(span(1, SpanDisposition::Crashed, /*Attempt=*/1));
  Rec.ringFor(1).push(span(1, SpanDisposition::Completed, /*Attempt=*/2));
  Rec.recordExternal(span(0, SpanDisposition::Poisoned, /*Attempt=*/2));

  EXPECT_EQ(Rec.collect(), 3u);
  EXPECT_EQ(Rec.collectedSpans(), 4u);

  std::vector<TraceSpan> Spans = Rec.take();
  ASSERT_EQ(Spans.size(), 4u);
  // Sorted by (RequestIndex, Attempt).
  EXPECT_EQ(Spans[0].RequestIndex, 0u);
  EXPECT_EQ(Spans[1].RequestIndex, 1u);
  EXPECT_EQ(Spans[1].Attempt, 1u);
  EXPECT_EQ(Spans[2].RequestIndex, 1u);
  EXPECT_EQ(Spans[2].Attempt, 2u);
  EXPECT_EQ(Spans[3].RequestIndex, 3u);

  // take() emptied the store; a later collect() finds nothing new.
  EXPECT_EQ(Rec.collectedSpans(), 0u);
  EXPECT_EQ(Rec.collect(), 0u);
}

TEST(TraceRecorderTest, RelaunchedWorkerKeepsItsRing) {
  // Worker slots are never reused for a different worker, so a relaunch
  // (same id, new thread) keeps producing into the same ring.
  TraceRecorder Rec;
  TraceRing *First = &Rec.ringFor(2);
  EXPECT_EQ(&Rec.ringFor(2), First);
  EXPECT_NE(&Rec.ringFor(0), First);
}

TEST(TraceRecorderTest, DroppedSpansAggregateAcrossRings) {
  TraceRecorder Rec(/*RingCapacity=*/2);
  for (uint64_t I = 0; I != 5; ++I)
    Rec.ringFor(0).push(span(I));
  for (uint64_t I = 0; I != 3; ++I)
    Rec.ringFor(1).push(span(I));
  EXPECT_EQ(Rec.droppedSpans(), 3u + 1u);
  EXPECT_EQ(Rec.collect(), 2u + 2u);
}

TEST(TraceRecorderTest, ExportMetricsTalliesDispositions) {
  TraceRecorder Rec;
  Rec.ringFor(0).push(span(0, SpanDisposition::Completed));
  Rec.ringFor(0).push(span(1, SpanDisposition::Trapped));
  Rec.ringFor(0).push(span(2, SpanDisposition::Crashed));
  Rec.recordExternal(span(2, SpanDisposition::Poisoned, /*Attempt=*/2));
  Rec.collect();
  // The tallies are cumulative at collect() time: handing the spans out
  // does not zero the gauges.
  std::vector<TraceSpan> Spans = Rec.take();
  ASSERT_EQ(Spans.size(), 4u);

  MetricsRegistry Reg(/*IncludeGlobals=*/false);
  Rec.exportMetrics(Reg);
  std::string Text = Reg.exportText();
  EXPECT_NE(Text.find("smokestack_trace_spans 4\n"), std::string::npos);
  EXPECT_NE(Text.find("smokestack_trace_spans_dropped 0\n"),
            std::string::npos);
  EXPECT_NE(Text.find("smokestack_trace_spans_completed 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("smokestack_trace_spans_trapped 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("smokestack_trace_spans_crashed 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("smokestack_trace_spans_poisoned 1\n"),
            std::string::npos);
}

TEST(TraceTest, DispositionNames) {
  EXPECT_STREQ(spanDispositionName(SpanDisposition::Completed), "completed");
  EXPECT_STREQ(spanDispositionName(SpanDisposition::Trapped), "trapped");
  EXPECT_STREQ(spanDispositionName(SpanDisposition::Crashed), "crashed");
  EXPECT_STREQ(spanDispositionName(SpanDisposition::Died), "died");
  EXPECT_STREQ(spanDispositionName(SpanDisposition::Cancelled), "cancelled");
  EXPECT_STREQ(spanDispositionName(SpanDisposition::Poisoned), "poisoned");
}

TEST(TraceTest, ObsTimingScopeNests) {
  EXPECT_FALSE(obsTimingEnabled());
  {
    ObsTimingScope Outer;
    EXPECT_TRUE(obsTimingEnabled());
    {
      ObsTimingScope Inner;
      EXPECT_TRUE(obsTimingEnabled());
    }
    EXPECT_TRUE(obsTimingEnabled());
  }
  EXPECT_FALSE(obsTimingEnabled());
}
