//===- tests/rng/Aes128Test.cpp - AES-128 correctness tests --------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rng/Aes128.h"

#include "support/SplitMix64.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace smokestack;

namespace {

void parseHex(const char *Hex, uint8_t *Out, size_t Size) {
  for (size_t I = 0; I != Size; ++I) {
    unsigned Byte;
    sscanf(Hex + 2 * I, "%2x", &Byte);
    Out[I] = static_cast<uint8_t>(Byte);
  }
}

std::string toHex(const uint8_t *Data, size_t Size) {
  std::string Result;
  for (size_t I = 0; I != Size; ++I) {
    char Buf[3];
    snprintf(Buf, sizeof(Buf), "%02x", Data[I]);
    Result += Buf;
  }
  return Result;
}

} // namespace

TEST(Aes128Test, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: AES-128 with the sequential key and plaintext.
  uint8_t Key[16], Block[16], Expected[16];
  parseHex("000102030405060708090a0b0c0d0e0f", Key, 16);
  parseHex("00112233445566778899aabbccddeeff", Block, 16);
  parseHex("69c4e0d86a7b0430d8cdb78070b4c55a", Expected, 16);

  Aes128KeySchedule Schedule;
  aes128ExpandKey(Key, Schedule);
  aes128EncryptBlockSoftware(Block, Schedule, 10);
  EXPECT_EQ(toHex(Block, 16), toHex(Expected, 16));
}

TEST(Aes128Test, Fips197AppendixBVector) {
  // FIPS-197 Appendix B worked example.
  uint8_t Key[16], Block[16], Expected[16];
  parseHex("2b7e151628aed2a6abf7158809cf4f3c", Key, 16);
  parseHex("3243f6a8885a308d313198a2e0370734", Block, 16);
  parseHex("3925841d02dc09fbdc118597196a0b32", Expected, 16);

  Aes128KeySchedule Schedule;
  aes128ExpandKey(Key, Schedule);
  aes128EncryptBlockSoftware(Block, Schedule, 10);
  EXPECT_EQ(toHex(Block, 16), toHex(Expected, 16));
}

TEST(Aes128Test, KeyExpansionFirstAndLastRoundKeys) {
  // FIPS-197 Appendix A.1 expanded-key words for the Appendix B key.
  uint8_t Key[16];
  parseHex("2b7e151628aed2a6abf7158809cf4f3c", Key, 16);
  Aes128KeySchedule Schedule;
  aes128ExpandKey(Key, Schedule);
  EXPECT_EQ(toHex(Schedule.RoundKeys[0], 16),
            "2b7e151628aed2a6abf7158809cf4f3c");
  EXPECT_EQ(toHex(Schedule.RoundKeys[1], 16),
            "a0fafe1788542cb123a339392a6c7605");
  EXPECT_EQ(toHex(Schedule.RoundKeys[10], 16),
            "d014f9a8c9ee2589e13f0cc8b6630ca6");
}

/// Property: the AES-NI backend agrees with the software backend for every
/// round count, across random keys and blocks.
class AesBackendAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AesBackendAgreementTest, HardwareMatchesSoftware) {
  if (!aes128HardwareAvailable())
    GTEST_SKIP() << "no AES-NI on this host";

  unsigned Rounds = GetParam();
  SplitMix64 Rng(0x5eed + Rounds);
  for (int Trial = 0; Trial != 64; ++Trial) {
    uint8_t Key[16], BlockSw[16], BlockHw[16];
    for (int I = 0; I != 16; I += 8) {
      uint64_t K = Rng.next(), B = Rng.next();
      memcpy(Key + I, &K, 8);
      memcpy(BlockSw + I, &B, 8);
    }
    memcpy(BlockHw, BlockSw, 16);

    Aes128KeySchedule Schedule;
    aes128ExpandKey(Key, Schedule);
    aes128EncryptBlockSoftware(BlockSw, Schedule, Rounds);
    aes128EncryptBlockAesni(BlockHw, Schedule, Rounds);
    ASSERT_EQ(toHex(BlockHw, 16), toHex(BlockSw, 16))
        << "rounds=" << Rounds << " trial=" << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRoundCounts, AesBackendAgreementTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

TEST(Aes128Test, ReducedRoundsDifferFromFull) {
  uint8_t Key[16], Block1[16], Block10[16];
  parseHex("000102030405060708090a0b0c0d0e0f", Key, 16);
  memset(Block1, 0, 16);
  memset(Block10, 0, 16);
  Aes128KeySchedule Schedule;
  aes128ExpandKey(Key, Schedule);
  aes128EncryptBlockSoftware(Block1, Schedule, 1);
  aes128EncryptBlockSoftware(Block10, Schedule, 10);
  EXPECT_NE(toHex(Block1, 16), toHex(Block10, 16));
}

TEST(Aes128Test, EncryptionIsDeterministic) {
  uint8_t Key[16], BlockA[16], BlockB[16];
  parseHex("2b7e151628aed2a6abf7158809cf4f3c", Key, 16);
  memset(BlockA, 0xab, 16);
  memset(BlockB, 0xab, 16);
  Aes128KeySchedule Schedule;
  aes128ExpandKey(Key, Schedule);
  aes128EncryptBlock(BlockA, Schedule, 10);
  aes128EncryptBlock(BlockB, Schedule, 10);
  EXPECT_EQ(toHex(BlockA, 16), toHex(BlockB, 16));
}
