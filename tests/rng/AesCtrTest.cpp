//===- tests/rng/AesCtrTest.cpp - AES-CTR source tests -------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rng/AesCtr.h"

#include <gtest/gtest.h>
#include <set>

using namespace smokestack;

TEST(AesCtrTest, NamesFollowPaperConvention) {
  DeterministicEntropySource Entropy(1);
  AesCtrRandomSource Aes1(Entropy, 1);
  AesCtrRandomSource Aes10(Entropy, 10);
  EXPECT_STREQ(Aes1.name(), "AES-1");
  EXPECT_STREQ(Aes10.name(), "AES-10");
}

TEST(AesCtrTest, SecurityLevelsMatchTableOne) {
  DeterministicEntropySource Entropy(1);
  AesCtrRandomSource Aes1(Entropy, 1);
  AesCtrRandomSource Aes10(Entropy, 10);
  EXPECT_EQ(Aes1.securityLevel(), SecurityLevel::Low);
  EXPECT_EQ(Aes10.securityLevel(), SecurityLevel::High);
}

TEST(AesCtrTest, NoDisclosableState) {
  // The key/nonce are modeled as register-resident per the threat model; an
  // attacker with full data-memory read access learns nothing.
  DeterministicEntropySource Entropy(1);
  AesCtrRandomSource Source(Entropy, 10);
  EXPECT_TRUE(Source.disclosableState().empty());
}

TEST(AesCtrTest, DeterministicGivenSameEntropy) {
  DeterministicEntropySource EntropyA(42), EntropyB(42);
  AesCtrRandomSource A(EntropyA, 10), B(EntropyB, 10);
  for (int I = 0; I != 100; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(AesCtrTest, DifferentSeedsDiverge) {
  DeterministicEntropySource EntropyA(1), EntropyB(2);
  AesCtrRandomSource A(EntropyA, 10), B(EntropyB, 10);
  bool AnyDifferent = false;
  for (int I = 0; I != 16 && !AnyDifferent; ++I)
    AnyDifferent = A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(AesCtrTest, RekeysAtConfiguredInterval) {
  DeterministicEntropySource Entropy(7);
  AesCtrRandomSource Source(Entropy, 10, /*RekeyInterval=*/100);
  EXPECT_EQ(Source.rekeyCount(), 1u) << "initial keying counts";
  for (int I = 0; I != 99; ++I)
    Source.next();
  EXPECT_EQ(Source.rekeyCount(), 1u);
  Source.next(); // draw 100 triggers the refresh
  EXPECT_EQ(Source.rekeyCount(), 2u);
  for (int I = 0; I != 100; ++I)
    Source.next();
  EXPECT_EQ(Source.rekeyCount(), 3u);
}

TEST(AesCtrTest, CallCounterCountsDraws) {
  DeterministicEntropySource Entropy(7);
  AesCtrRandomSource Source(Entropy, 1);
  EXPECT_EQ(Source.callCounter(), 0u);
  for (int I = 0; I != 37; ++I)
    Source.next();
  EXPECT_EQ(Source.callCounter(), 37u);
}

TEST(AesCtrTest, OutputLooksUniform) {
  // Coarse sanity: over 4096 draws, every one of the 16 top nibbles should
  // appear, and consecutive outputs should not repeat.
  DeterministicEntropySource Entropy(3);
  AesCtrRandomSource Source(Entropy, 10);
  std::set<uint64_t> TopNibbles;
  uint64_t Prev = Source.next();
  for (int I = 0; I != 4096; ++I) {
    uint64_t Value = Source.next();
    ASSERT_NE(Value, Prev);
    TopNibbles.insert(Value >> 60);
    Prev = Value;
  }
  EXPECT_EQ(TopNibbles.size(), 16u);
}

TEST(AesCtrTest, SoftwareBackendProducesSameStreamAsAuto) {
  if (!aes128HardwareAvailable())
    GTEST_SKIP() << "no AES-NI on this host; Auto already is Software";
  DeterministicEntropySource EntropyA(11), EntropyB(11);
  AesCtrRandomSource Hw(EntropyA, 10, AesCtrRandomSource::DefaultRekeyInterval,
                        AesCtrRandomSource::Backend::Auto);
  AesCtrRandomSource Sw(EntropyB, 10, AesCtrRandomSource::DefaultRekeyInterval,
                        AesCtrRandomSource::Backend::Software);
  for (int I = 0; I != 64; ++I)
    ASSERT_EQ(Hw.next(), Sw.next());
}

TEST(AesCtrTest, OneRoundStreamDiffersFromTenRound) {
  DeterministicEntropySource EntropyA(5), EntropyB(5);
  AesCtrRandomSource Aes1(EntropyA, 1), Aes10(EntropyB, 10);
  EXPECT_NE(Aes1.next(), Aes10.next());
}
