//===- tests/rng/BufferedIsolationTest.cpp - per-worker buffer isolation --===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential test for the pool's "one RNG chain per worker" rule:
// sources drawn concurrently from distinct threads must produce exactly
// the word streams their single-threaded twins produce, and their
// bufferedState() windows must be disjoint memory — no sharing, no
// cross-worker perturbation, regardless of scheduling.
//
//===----------------------------------------------------------------------===//

#include "rng/AesCtr.h"
#include "rng/Entropy.h"
#include "runtime/DeriveSeed.h"

#include "gtest/gtest.h"

#include <thread>
#include <vector>

using namespace smokestack;

namespace {

constexpr unsigned NumWorkers = 6;
constexpr unsigned BatchSize = 8;
constexpr unsigned DrawsPerWorker = 103; // deliberately not a batch multiple

uint64_t workerSeed(unsigned Worker) {
  return deriveSeed(/*RootSeed=*/42, Worker, SeedLane::AesEntropy);
}

TEST(BufferedIsolationTest, ConcurrentStreamsMatchSingleThreadedTwins) {
  // Single-threaded reference: one buffered source per worker seed.
  std::vector<std::vector<uint64_t>> Reference(NumWorkers);
  for (unsigned W = 0; W != NumWorkers; ++W) {
    DeterministicEntropySource Entropy(workerSeed(W));
    AesCtrRandomSource Rng(Entropy, /*NumRounds=*/10);
    Rng.setBatchSize(BatchSize);
    for (unsigned I = 0; I != DrawsPerWorker; ++I)
      Reference[W].push_back(Rng.nextBuffered());
  }

  // Concurrent run: same construction, every worker on its own thread.
  std::vector<std::vector<uint64_t>> Concurrent(NumWorkers);
  {
    std::vector<std::thread> Threads;
    for (unsigned W = 0; W != NumWorkers; ++W)
      Threads.emplace_back([W, &Concurrent] {
        DeterministicEntropySource Entropy(workerSeed(W));
        AesCtrRandomSource Rng(Entropy, /*NumRounds=*/10);
        Rng.setBatchSize(BatchSize);
        for (unsigned I = 0; I != DrawsPerWorker; ++I)
          Concurrent[W].push_back(Rng.nextBuffered());
      });
    for (std::thread &T : Threads)
      T.join();
  }

  for (unsigned W = 0; W != NumWorkers; ++W)
    EXPECT_EQ(Concurrent[W], Reference[W]) << "worker " << W;

  // Distinct seeds must give distinct streams, or the isolation claim is
  // trivially satisfied by identical output.
  for (unsigned W = 1; W != NumWorkers; ++W)
    EXPECT_NE(Reference[0], Reference[W]);
}

TEST(BufferedIsolationTest, BufferedStateWindowsAreDisjoint) {
  // Mid-batch, every source exposes its own undrawn words; the windows
  // must be separate allocations (per-worker buffers, never shared).
  std::vector<std::unique_ptr<DeterministicEntropySource>> Entropies;
  std::vector<std::unique_ptr<AesCtrRandomSource>> Sources;
  for (unsigned W = 0; W != NumWorkers; ++W) {
    Entropies.push_back(
        std::make_unique<DeterministicEntropySource>(workerSeed(W)));
    Sources.push_back(
        std::make_unique<AesCtrRandomSource>(*Entropies.back(), 10));
    Sources.back()->setBatchSize(BatchSize);
    Sources.back()->nextBuffered(); // trigger one refill, leave a remainder
  }
  for (unsigned W = 0; W != NumWorkers; ++W) {
    auto Window = Sources[W]->bufferedState();
    ASSERT_EQ(Window.size(), (BatchSize - 1) * sizeof(uint64_t));
    for (unsigned V = W + 1; V != NumWorkers; ++V) {
      auto Other = Sources[V]->bufferedState();
      const uint8_t *WEnd = Window.data() + Window.size();
      const uint8_t *OEnd = Other.data() + Other.size();
      EXPECT_TRUE(WEnd <= Other.data() || OEnd <= Window.data())
          << "buffers of workers " << W << " and " << V << " overlap";
    }
  }
}

TEST(BufferedIsolationTest, DrainingOneSourceLeavesOthersUntouched) {
  // The differential at the API level: drawing heavily from one source
  // must not advance any other source's sequence.
  DeterministicEntropySource EntropyA(workerSeed(0));
  AesCtrRandomSource A(EntropyA, 10);
  A.setBatchSize(BatchSize);
  DeterministicEntropySource EntropyB(workerSeed(1));
  AesCtrRandomSource B(EntropyB, 10);
  B.setBatchSize(BatchSize);

  std::vector<uint64_t> BFirst;
  for (unsigned I = 0; I != 5; ++I)
    BFirst.push_back(B.nextBuffered());
  for (unsigned I = 0; I != 1000; ++I)
    (void)A.nextBuffered();
  std::vector<uint64_t> BRest;
  for (unsigned I = 0; I != 5; ++I)
    BRest.push_back(B.nextBuffered());

  DeterministicEntropySource EntropyRef(workerSeed(1));
  AesCtrRandomSource Ref(EntropyRef, 10);
  Ref.setBatchSize(BatchSize);
  for (unsigned I = 0; I != 5; ++I)
    EXPECT_EQ(Ref.nextBuffered(), BFirst[I]);
  for (unsigned I = 0; I != 5; ++I)
    EXPECT_EQ(Ref.nextBuffered(), BRest[I]);
}

} // namespace
