//===- tests/rng/EntropyTest.cpp - Entropy source tests ------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rng/Entropy.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace smokestack;

TEST(EntropyTest, DeterministicSourceIsReproducible) {
  DeterministicEntropySource A(123), B(123);
  uint8_t BufA[64], BufB[64];
  A.fill(BufA, sizeof(BufA));
  B.fill(BufB, sizeof(BufB));
  EXPECT_EQ(std::memcmp(BufA, BufB, sizeof(BufA)), 0);
}

TEST(EntropyTest, DeterministicSourceDependsOnSeed) {
  DeterministicEntropySource A(1), B(2);
  uint8_t BufA[32], BufB[32];
  A.fill(BufA, sizeof(BufA));
  B.fill(BufB, sizeof(BufB));
  EXPECT_NE(std::memcmp(BufA, BufB, sizeof(BufA)), 0);
}

TEST(EntropyTest, UnalignedSizes) {
  DeterministicEntropySource Source(9);
  uint8_t Buf[13];
  std::memset(Buf, 0, sizeof(Buf));
  Source.fill(Buf, sizeof(Buf));
  bool AnyNonZero = false;
  for (uint8_t Byte : Buf)
    AnyNonZero |= Byte != 0;
  EXPECT_TRUE(AnyNonZero);
}

TEST(EntropyTest, Next64Changes) {
  DeterministicEntropySource Source(4);
  EXPECT_NE(Source.next64(), Source.next64());
}

TEST(EntropyTest, SystemSourceProducesVaryingBytes) {
  SystemEntropySource Source;
  uint8_t BufA[32], BufB[32];
  Source.fill(BufA, sizeof(BufA));
  Source.fill(BufB, sizeof(BufB));
  EXPECT_NE(std::memcmp(BufA, BufB, sizeof(BufA)), 0)
      << "two 32-byte reads colliding is essentially impossible";
}
