//===- tests/rng/PseudoTest.cpp - pseudo scheme tests --------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rng/Pseudo.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace smokestack;

TEST(PseudoTest, StateIsDisclosable) {
  DeterministicEntropySource Entropy(1);
  PseudoRandomSource Source(Entropy);
  EXPECT_EQ(Source.disclosableState().size(), 16u)
      << "both xorshift128+ state words live in attacker-readable memory";
  EXPECT_EQ(Source.securityLevel(), SecurityLevel::None);
  EXPECT_STREQ(Source.name(), "pseudo");
}

TEST(PseudoTest, AttackerPredictsFutureDrawsFromDisclosedState) {
  // This is the attack the paper's threat model warns about (it cites
  // Kelsey et al. [23]): read the generator state from memory once, then
  // anticipate every future permutation index.
  DeterministicEntropySource Entropy(99);
  PseudoRandomSource Victim(Entropy);

  // Victim draws a few values first.
  for (int I = 0; I != 5; ++I)
    Victim.next();

  // Attacker discloses the 16 state bytes...
  uint64_t Stolen[2];
  auto State = Victim.disclosableState();
  std::memcpy(Stolen, State.data(), State.size());

  // ...and predicts the next 100 draws exactly.
  for (int I = 0; I != 100; ++I) {
    uint64_t Predicted = PseudoRandomSource::stepState(Stolen);
    ASSERT_EQ(Victim.next(), Predicted) << "draw " << I;
  }
}

TEST(PseudoTest, AttackerCanPinGeneratorByWritingState) {
  // Write access to the state lets an attacker force a chosen stream.
  DeterministicEntropySource EntropyA(1), EntropyB(2);
  PseudoRandomSource VictimA(EntropyA), VictimB(EntropyB);

  auto StateB = VictimB.disclosableState();
  auto StateA = VictimA.mutableDisclosableState();
  std::memcpy(StateA.data(), StateB.data(), StateB.size());

  for (int I = 0; I != 20; ++I)
    ASSERT_EQ(VictimA.next(), VictimB.next());
}

TEST(PseudoTest, ZeroSeedStillProducesOutput) {
  // All-zero xorshift state would be a fixed point; the constructor must
  // avoid it.
  class ZeroEntropy : public EntropySource {
    bool tryFill(uint8_t *Buffer, size_t Size) override {
      std::memset(Buffer, 0, Size);
      return true;
    }
  } Entropy;
  PseudoRandomSource Source(Entropy);
  bool AnyNonZero = false;
  for (int I = 0; I != 8 && !AnyNonZero; ++I)
    AnyNonZero = Source.next() != 0;
  EXPECT_TRUE(AnyNonZero);
}
