//===- tests/rng/RandomFillTest.cpp - Batched-draw buffering tests --------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the RandomSource batched-draw interface: fill(), nextBuffered()
/// and the buffering machinery, across all four schemes of the paper's
/// Table I. Also pins the disclosure model: disclosableState() keeps
/// reflecting only the scheme's own memory-resident generator state, while
/// buffered-but-undrawn words are a separate, scheme-independent disclosure
/// channel (bufferedState()) that exists for every scheme that opts into
/// batching — including the otherwise disclosure-resistant ones.
///
//===----------------------------------------------------------------------===//

#include "rng/AesCtr.h"
#include "rng/Entropy.h"
#include "rng/Pseudo.h"
#include "rng/RdRand.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

using namespace smokestack;

namespace {

/// Builds each of the four schemes twice from identically-seeded
/// deterministic entropy and hands both instances to \p Check.
void forEachSchemePair(
    const std::function<void(RandomSource &, RandomSource &)> &Check) {
  {
    DeterministicEntropySource E1(42), E2(42);
    PseudoRandomSource A(E1), B(E2);
    SCOPED_TRACE("pseudo");
    Check(A, B);
  }
  {
    DeterministicEntropySource E1(42), E2(42);
    AesCtrRandomSource A(E1, 1), B(E2, 1);
    SCOPED_TRACE("AES-1");
    Check(A, B);
  }
  {
    DeterministicEntropySource E1(42), E2(42);
    AesCtrRandomSource A(E1, 10), B(E2, 10);
    SCOPED_TRACE("AES-10");
    Check(A, B);
  }
  {
    DeterministicEntropySource E1(42), E2(42);
    RdRandSource A(E1, /*ForceFallback=*/true), B(E2, /*ForceFallback=*/true);
    SCOPED_TRACE("RDRAND (fallback)");
    Check(A, B);
  }
}

} // namespace

TEST(RandomFillTest, BatchSizeOneForwardsToNext) {
  // The default batch size of 1 is load-bearing: every nextBuffered() draw
  // must be bit-identical to next(), with nothing buffered and no refills,
  // so existing draw-stream tests (and attacks) see an unchanged generator.
  forEachSchemePair([](RandomSource &Buffered, RandomSource &Plain) {
    EXPECT_EQ(Buffered.batchSize(), 1u);
    for (int I = 0; I != 100; ++I)
      EXPECT_EQ(Buffered.nextBuffered(), Plain.next());
    EXPECT_EQ(Buffered.refillCount(), 0u);
    EXPECT_TRUE(Buffered.bufferedState().empty());
  });
}

TEST(RandomFillTest, DefaultFillMatchesNextLoop) {
  // Schemes without a fill() override (pseudo, RDRAND) inherit the default,
  // which must reproduce the serial next() stream exactly.
  {
    DeterministicEntropySource E1(7), E2(7);
    PseudoRandomSource Filled(E1), Serial(E2);
    uint64_t Out[37];
    Filled.fill(Out);
    for (uint64_t W : Out)
      EXPECT_EQ(W, Serial.next());
  }
  {
    DeterministicEntropySource E1(7), E2(7);
    RdRandSource Filled(E1, true), Serial(E2, true);
    uint64_t Out[37];
    Filled.fill(Out);
    for (uint64_t W : Out)
      EXPECT_EQ(W, Serial.next());
  }
}

TEST(RandomFillTest, BufferedDrawsAreDeterministic) {
  // Identically-seeded sources with the same batch size produce the same
  // buffered stream — batching may reorder the cipher evaluation but must
  // stay a pure function of the seed.
  forEachSchemePair([](RandomSource &A, RandomSource &B) {
    A.setBatchSize(8);
    B.setBatchSize(8);
    for (int I = 0; I != 50; ++I)
      EXPECT_EQ(A.nextBuffered(), B.nextBuffered());
    EXPECT_EQ(A.refillCount(), B.refillCount());
    EXPECT_GE(A.refillCount(), 6u); // ceil(50 / 8)
  });
}

TEST(RandomFillTest, FirstBufferedWordEqualsNext) {
  // The AES fill() contract: the first word of every refill group is exactly
  // what next() would have produced from the same state (later words diverge
  // from the serial feedback stream by design).
  forEachSchemePair([](RandomSource &Buffered, RandomSource &Serial) {
    Buffered.setBatchSize(16);
    EXPECT_EQ(Buffered.nextBuffered(), Serial.next());
  });
}

TEST(RandomFillTest, AesFillAdvancesCounterAndRekeysPerDraw) {
  // With a rekey interval of 8, 20 batched draws must leave the universal
  // call counter at 20 and have rekeyed at draws 8 and 16 — identical
  // bookkeeping to 20 serial next() calls (3 = construction + 2 interval
  // rekeys). Groups never span a rekey boundary.
  DeterministicEntropySource E1(9), E2(9);
  AesCtrRandomSource Batched(E1, 10, /*RekeyInterval=*/8);
  AesCtrRandomSource Serial(E2, 10, /*RekeyInterval=*/8);
  uint64_t Out[20];
  Batched.fill(Out);
  for (int I = 0; I != 20; ++I)
    Serial.next();
  EXPECT_EQ(Batched.callCounter(), 20u);
  EXPECT_EQ(Batched.callCounter(), Serial.callCounter());
  EXPECT_EQ(Batched.rekeyCount(), 3u);
  EXPECT_EQ(Batched.rekeyCount(), Serial.rekeyCount());
}

TEST(RandomFillTest, BufferedStateExposesPendingWords) {
  // Whatever sits in the buffer is attacker-readable memory: the bytes
  // reported by bufferedState() must be exactly the words that subsequent
  // nextBuffered() calls will hand out, for every scheme.
  forEachSchemePair([](RandomSource &Rng, RandomSource &) {
    Rng.setBatchSize(8);
    (void)Rng.nextBuffered(); // triggers a refill, leaves 7 words pending
    std::span<const uint8_t> Pending = Rng.bufferedState();
    ASSERT_EQ(Pending.size(), 7 * sizeof(uint64_t));
    uint64_t Disclosed[7];
    std::memcpy(Disclosed, Pending.data(), sizeof(Disclosed));
    for (uint64_t Expected : Disclosed)
      EXPECT_EQ(Rng.nextBuffered(), Expected);
    // Buffer fully drained: nothing left to disclose until the next refill.
    EXPECT_TRUE(Rng.bufferedState().empty());
  });
}

TEST(RandomFillTest, DisclosableStateStillSchemeOnly) {
  // Batching must not change what disclosableState() reports: pseudo keeps
  // its full 16-byte xorshift state; AES and RDRAND stay empty even while
  // bufferedState() is non-empty. The buffered words are accounted for
  // through the separate channel, not folded into the scheme state.
  DeterministicEntropySource E1(3), E2(3), E3(3);
  PseudoRandomSource Pseudo(E1);
  AesCtrRandomSource Aes(E2, 10);
  RdRandSource RdRand(E3, true);
  for (RandomSource *Rng :
       std::initializer_list<RandomSource *>{&Pseudo, &Aes, &RdRand}) {
    Rng->setBatchSize(8);
    (void)Rng->nextBuffered();
    EXPECT_FALSE(Rng->bufferedState().empty());
  }
  EXPECT_EQ(Pseudo.disclosableState().size(), 16u);
  EXPECT_TRUE(Aes.disclosableState().empty());
  EXPECT_TRUE(RdRand.disclosableState().empty());
}

TEST(RandomFillTest, PseudoBufferedStatePredictsFutureDraws) {
  // The pseudo attack surface widens under batching: disclosing the buffer
  // yields upcoming draws directly, and disclosing the xorshift state still
  // predicts every draw after the buffer. Both primitives must keep working.
  DeterministicEntropySource E(11);
  PseudoRandomSource Rng(E);
  Rng.setBatchSize(4);
  (void)Rng.nextBuffered();

  // Attacker snapshot: pending buffer words plus generator state.
  std::span<const uint8_t> Pending = Rng.bufferedState();
  ASSERT_EQ(Pending.size(), 3 * sizeof(uint64_t));
  uint64_t Upcoming[3];
  std::memcpy(Upcoming, Pending.data(), sizeof(Upcoming));
  uint64_t StateCopy[2];
  ASSERT_EQ(Rng.disclosableState().size(), sizeof(StateCopy));
  std::memcpy(StateCopy, Rng.disclosableState().data(), sizeof(StateCopy));

  // The buffer predicts the next three draws...
  for (uint64_t Expected : Upcoming)
    EXPECT_EQ(Rng.nextBuffered(), Expected);
  // ...and the disclosed state predicts the refill that follows.
  EXPECT_EQ(Rng.nextBuffered(), PseudoRandomSource::stepState(StateCopy));
}

TEST(RandomFillTest, SetBatchSizeClampsAndDiscards) {
  DeterministicEntropySource E(5);
  PseudoRandomSource Rng(E);
  Rng.setBatchSize(0);
  EXPECT_EQ(Rng.batchSize(), 1u);
  Rng.setBatchSize(RandomSource::MaxBatchSize + 100);
  EXPECT_EQ(Rng.batchSize(), RandomSource::MaxBatchSize);

  // Changing the batch size discards pending words (the buffer is refilled
  // lazily on the next draw at the new granularity).
  Rng.setBatchSize(8);
  (void)Rng.nextBuffered();
  EXPECT_FALSE(Rng.bufferedState().empty());
  Rng.setBatchSize(4);
  EXPECT_TRUE(Rng.bufferedState().empty());
  uint64_t Before = Rng.refillCount();
  (void)Rng.nextBuffered();
  EXPECT_EQ(Rng.refillCount(), Before + 1);
  EXPECT_EQ(Rng.bufferedState().size(), 3 * sizeof(uint64_t));
}
