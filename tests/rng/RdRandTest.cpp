//===- tests/rng/RdRandTest.cpp - RDRAND source tests --------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rng/RdRand.h"

#include <gtest/gtest.h>
#include <set>

using namespace smokestack;

TEST(RdRandTest, Metadata) {
  DeterministicEntropySource Entropy(1);
  RdRandSource Source(Entropy);
  EXPECT_STREQ(Source.name(), "RDRAND");
  EXPECT_EQ(Source.securityLevel(), SecurityLevel::High);
  EXPECT_TRUE(Source.disclosableState().empty());
}

TEST(RdRandTest, HardwareFlagMatchesCpuid) {
  DeterministicEntropySource Entropy(1);
  RdRandSource Source(Entropy);
  EXPECT_EQ(Source.usingHardware(), rdRandAvailable());
}

TEST(RdRandTest, ForceFallbackIsDeterministic) {
  DeterministicEntropySource EntropyA(17), EntropyB(17);
  RdRandSource A(EntropyA, /*ForceFallback=*/true);
  RdRandSource B(EntropyB, /*ForceFallback=*/true);
  EXPECT_FALSE(A.usingHardware());
  for (int I = 0; I != 32; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(RdRandTest, DrawsVary) {
  DeterministicEntropySource Entropy(5);
  RdRandSource Source(Entropy);
  std::set<uint64_t> Values;
  for (int I = 0; I != 64; ++I)
    Values.insert(Source.next());
  // True randomness (or the splitmix fallback) collides with negligible
  // probability over 64 draws.
  EXPECT_GT(Values.size(), 60u);
}
