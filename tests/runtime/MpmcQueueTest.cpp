//===- tests/runtime/MpmcQueueTest.cpp - queue semantics tests ------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The MPMC queue's contract in isolation: bounded-lane admission
// (push/tryPush), the priority retry lane, close semantics (including
// close-while-full with blocked producers), drain ordering, and the
// in-flight protocol that gates consumer exit. The WorkerPool tests cover
// the same machinery end-to-end; these pin the queue's own edge cases so a
// pool failure can be bisected to layer.
//
//===----------------------------------------------------------------------===//

#include "runtime/MpmcQueue.h"

#include "gtest/gtest.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace smokestack;

namespace {

TEST(MpmcQueueTest, TryPushReportsOkFullClosed) {
  MpmcQueue<int> Q(2);
  int A = 1, B = 2, C = 3;
  EXPECT_EQ(Q.tryPush(A), QueuePush::Ok);
  EXPECT_EQ(Q.tryPush(B), QueuePush::Ok);
  EXPECT_EQ(Q.tryPush(C), QueuePush::Full) << "capacity 2 is exhausted";
  EXPECT_EQ(Q.size(), 2u);

  Q.close();
  EXPECT_EQ(Q.tryPush(C), QueuePush::Closed)
      << "closed dominates full: the caller must book ShedClosed, not retry";
}

TEST(MpmcQueueTest, CapacityZeroClampsToOne) {
  MpmcQueue<int> Q(0);
  EXPECT_EQ(Q.capacity(), 1u);
  int A = 1, B = 2;
  EXPECT_EQ(Q.tryPush(A), QueuePush::Ok);
  EXPECT_EQ(Q.tryPush(B), QueuePush::Full);
}

TEST(MpmcQueueTest, PushAfterCloseFails) {
  MpmcQueue<int> Q(4);
  Q.close();
  EXPECT_FALSE(Q.push(1));
  EXPECT_TRUE(Q.closed());
}

TEST(MpmcQueueTest, DrainAfterCloseIsFifoWithPriorityFirst) {
  MpmcQueue<int> Q(4);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  // Retries land on the priority lane and survive close().
  Q.close();
  Q.pushPriority(9);
  Q.pushPriority(8);

  // Priority lane first (FIFO within it), then the bounded lane (FIFO).
  std::vector<int> Order;
  while (std::optional<int> V = Q.tryPop()) {
    Order.push_back(*V);
    Q.taskDone();
  }
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order[0], 9);
  EXPECT_EQ(Order[1], 8);
  EXPECT_EQ(Order[2], 1);
  EXPECT_EQ(Order[3], 2);
  EXPECT_EQ(Q.pop(), std::nullopt) << "closed and drained";
}

TEST(MpmcQueueTest, CloseWhileFullWakesEveryBlockedProducer) {
  MpmcQueue<int> Q(1);
  ASSERT_TRUE(Q.push(0)); // fill the bounded lane

  constexpr int NumProducers = 4;
  std::atomic<int> Rejected{0};
  std::vector<std::thread> Producers;
  for (int I = 0; I != NumProducers; ++I)
    Producers.emplace_back([&Q, &Rejected, I] {
      if (!Q.push(100 + I))
        Rejected.fetch_add(1, std::memory_order_relaxed);
    });

  // Give the producers a moment to block on the full queue, then close:
  // all of them must wake and fail rather than stay parked forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  for (std::thread &T : Producers)
    T.join();
  EXPECT_EQ(Rejected.load(), NumProducers);

  // The item admitted before close still drains.
  std::optional<int> V = Q.pop();
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 0);
  Q.taskDone();
}

TEST(MpmcQueueTest, PopBlocksExitOnInFlightItems) {
  MpmcQueue<int> Q(4);
  ASSERT_TRUE(Q.push(42));
  std::optional<int> V = Q.tryPop();
  ASSERT_TRUE(V.has_value());

  // Closed and empty, but the popped item is still in flight: a consumer
  // must NOT get the exit signal — the item may yet be requeued (that is
  // exactly the crashed-worker-retry window).
  Q.close();
  std::atomic<bool> GotRequeue{false};
  std::thread Consumer([&Q, &GotRequeue] {
    std::optional<int> R = Q.pop(); // blocks until requeue or all-done
    GotRequeue.store(R.has_value(), std::memory_order_relaxed);
    if (R)
      Q.taskDone();
    // Second pop: now closed, drained, nothing in flight → exit signal.
    EXPECT_EQ(Q.pop(), std::nullopt);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.pushPriority(*V + 1); // "retry" of the in-flight item
  Q.taskDone();           // original attempt is now terminal
  Consumer.join();
  EXPECT_TRUE(GotRequeue.load()) << "the requeued item must be served";
}

TEST(MpmcQueueTest, WaitIdleWaitsForTaskDone) {
  MpmcQueue<int> Q(4);
  ASSERT_TRUE(Q.push(7));
  std::optional<int> V = Q.tryPop();
  ASSERT_TRUE(V.has_value());
  Q.close();

  std::atomic<bool> Idle{false};
  std::thread Waiter([&Q, &Idle] {
    Q.waitIdle();
    Idle.store(true, std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Idle.load()) << "an in-flight item holds waitIdle";
  Q.taskDone();
  Waiter.join();
  EXPECT_TRUE(Idle.load());
}

TEST(MpmcQueueTest, MultiProducerMultiConsumerDeliversEverything) {
  MpmcQueue<int> Q(8);
  constexpr int PerProducer = 200;
  constexpr int NumProducers = 3;
  constexpr int NumConsumers = 3;

  std::vector<std::thread> Threads;
  std::atomic<int> Sum{0}, Count{0};
  for (int C = 0; C != NumConsumers; ++C)
    Threads.emplace_back([&] {
      while (std::optional<int> V = Q.pop()) {
        Sum.fetch_add(*V, std::memory_order_relaxed);
        Count.fetch_add(1, std::memory_order_relaxed);
        Q.taskDone();
      }
    });
  for (int P = 0; P != NumProducers; ++P)
    Threads.emplace_back([&Q, P] {
      for (int I = 0; I != PerProducer; ++I)
        ASSERT_TRUE(Q.push(P * PerProducer + I));
    });
  for (size_t T = NumConsumers; T != Threads.size(); ++T)
    Threads[T].join();
  Q.close();
  for (int C = 0; C != NumConsumers; ++C)
    Threads[C].join();

  constexpr int Total = NumProducers * PerProducer;
  EXPECT_EQ(Count.load(), Total);
  EXPECT_EQ(Sum.load(), Total * (Total - 1) / 2);
}

} // namespace
