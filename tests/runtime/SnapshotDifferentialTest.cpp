//===- tests/runtime/SnapshotDifferentialTest.cpp - fast-path differential ===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pool-level proof of the snapshot/restore contract: every observable —
// per-request outcomes (index, trap, return value, steps, attempts,
// poisoned) and the complete PoolBooks — must be bit-identical with the
// crash-rebuild fast-path on or off, at workers = 1/2/8, across reruns,
// under chaos (crashes, hard deaths, RNG faults) and scripted poison
// requests. The legacy full-reconstruction path is kept alive precisely to
// serve as this differential oracle (PoolOptions::SnapshotRestore).
//
//===----------------------------------------------------------------------===//

#include "runtime/WorkerPool.h"

#include "ir/IRBuilder.h"
#include "rng/RdRand.h"

#include "gtest/gtest.h"

using namespace smokestack;

namespace {

/// driver(): folds two smokestack.rand draws into a byte (same shape as the
/// supervisor chaos tests, so faults land in the same sites).
void buildRandModule(Module &M) {
  IRBuilder B(M);
  Function *Rand = M.getOrInsertDeclaration("smokestack.rand", B.i64(), {});
  Function *Driver = M.createFunction("driver", B.i64(), {});
  B.setInsertPoint(Driver->createBlock("entry"));
  Value *A = B.call(Rand, {});
  Value *C = B.call(Rand, {});
  B.ret(B.and_(B.add(A, C), B.constI64(0xff)));
}

/// Full chaos: RNG degradation, contained crashes, and hard worker deaths,
/// so the rebuild path under test actually fires many times per run.
PoolOptions chaosOptions(uint64_t RootSeed = 7) {
  PoolOptions Opts;
  Opts.RootSeed = RootSeed;
  Opts.Function = "driver";
  Opts.QueueCapacity = 32;
  Opts.InjectFaults = true;
  Opts.FaultTemplate.site(FaultSite::RdRandStep) = {0.15,
                                                    RdRandSource::RetryLimit,
                                                    0};
  Opts.FaultTemplate.site(FaultSite::RekeyEntropy) = {0.4, 1, 0};
  Opts.FaultTemplate.site(FaultSite::WorkerCrash) = {0.2, 1, 0};
  Opts.FaultTemplate.site(FaultSite::WorkerDeath) = {0.05, 1, 0};
  Opts.Supervision.AttemptsMin = 2;
  Opts.Supervision.AttemptsMax = 5;
  Opts.Supervision.HeartbeatMillis = 5;
  return Opts;
}

struct RunResult {
  std::vector<PoolOutcome> Outcomes;
  PoolBooks Books;
};

RunResult runPool(Module &M, PoolOptions Opts, unsigned Workers,
                  bool SnapshotRestore, uint64_t NumRequests) {
  Opts.Workers = Workers;
  Opts.SnapshotRestore = SnapshotRestore;
  WorkerPool Pool(M, Opts);
  Pool.start();
  for (uint64_t I = 0; I != NumRequests; ++I)
    EXPECT_TRUE(Pool.submit({I, {}}));
  RunResult R;
  R.Outcomes = Pool.finish();
  R.Books = Pool.books();
  return R;
}

void expectIdentical(const RunResult &A, const RunResult &B,
                     const char *What) {
  ASSERT_EQ(A.Outcomes.size(), B.Outcomes.size()) << What;
  for (size_t I = 0; I != A.Outcomes.size(); ++I) {
    EXPECT_EQ(A.Outcomes[I].Index, B.Outcomes[I].Index) << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Trap, B.Outcomes[I].Trap) << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].ReturnValue, B.Outcomes[I].ReturnValue)
        << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Steps, B.Outcomes[I].Steps) << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Attempts, B.Outcomes[I].Attempts)
        << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Poisoned, B.Outcomes[I].Poisoned)
        << What << " @" << I;
  }
  EXPECT_EQ(A.Books.Requests, B.Books.Requests) << What;
  EXPECT_EQ(A.Books.RequestTraps, B.Books.RequestTraps) << What;
  EXPECT_EQ(A.Books.Rng.DrawsServed, B.Books.Rng.DrawsServed) << What;
  EXPECT_EQ(A.Books.Rng.FallbackDraws, B.Books.Rng.FallbackDraws) << What;
  EXPECT_EQ(A.Books.Rng.FailClosedDraws, B.Books.Rng.FailClosedDraws) << What;
  EXPECT_EQ(A.Books.Completed, B.Books.Completed) << What;
  EXPECT_EQ(A.Books.Poisoned, B.Books.Poisoned) << What;
  EXPECT_EQ(A.Books.CrashesContained, B.Books.CrashesContained) << What;
  EXPECT_EQ(A.Books.WorkerDeaths, B.Books.WorkerDeaths) << What;
  EXPECT_EQ(A.Books.WorkerRestarts, B.Books.WorkerRestarts) << What;
  EXPECT_EQ(A.Books.Retries, B.Books.Retries) << What;
  EXPECT_EQ(A.Books.PoisonedIndices, B.Books.PoisonedIndices) << What;
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    EXPECT_EQ(A.Books.InjectedProbes[S], B.Books.InjectedProbes[S])
        << What << " site " << S;
    EXPECT_EQ(A.Books.InjectedEvents[S], B.Books.InjectedEvents[S])
        << What << " site " << S;
  }
}

TEST(SnapshotDifferentialTest, FastPathOnOffIdenticalUnderChaos) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  constexpr uint64_t N = 96;

  for (unsigned Workers : {1u, 2u, 8u}) {
    RunResult On = runPool(M, Opts, Workers, /*SnapshotRestore=*/true, N);
    RunResult Off = runPool(M, Opts, Workers, /*SnapshotRestore=*/false, N);
    SCOPED_TRACE(Workers);
    // The rebuild path must actually fire for the comparison to bite.
    EXPECT_GT(On.Books.CrashesContained, 0u);
    EXPECT_GT(On.Books.WorkerDeaths, 0u);
    EXPECT_TRUE(On.Books.accountingIdentityHolds());
    EXPECT_TRUE(Off.Books.accountingIdentityHolds());
    expectIdentical(On, Off, "snapshot on vs off");
  }
}

TEST(SnapshotDifferentialTest, FastPathInvariantUnderWorkerCountAndRerun) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  constexpr uint64_t N = 96;

  RunResult One = runPool(M, Opts, 1, true, N);
  RunResult Two = runPool(M, Opts, 2, true, N);
  RunResult Eight = runPool(M, Opts, 8, true, N);
  RunResult Again = runPool(M, Opts, 2, true, N);

  EXPECT_GT(One.Books.CrashesContained, 0u);
  expectIdentical(One, Two, "workers=1 vs workers=2 (fast-path)");
  expectIdentical(One, Eight, "workers=1 vs workers=8 (fast-path)");
  expectIdentical(Two, Again, "rerun with same root seed (fast-path)");
}

TEST(SnapshotDifferentialTest, PoisonQuarantineIdenticalOnOff) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  Opts.Supervision.AttemptsMin = 3;
  Opts.Supervision.AttemptsMax = 3;
  // Requests with Index % 7 == 3 crash on every attempt: guaranteed
  // quarantines, so the poison path is exercised on both rebuild paths.
  Opts.PlanForRequest = [](uint64_t Index, FaultPlan &Plan) {
    if (Index % 7 == 3)
      Plan.site(FaultSite::WorkerCrash) = {0.0, 1, 1};
  };
  constexpr uint64_t N = 70;

  RunResult On = runPool(M, Opts, 2, true, N);
  RunResult Off = runPool(M, Opts, 2, false, N);
  EXPECT_GT(On.Books.Poisoned, 0u) << "no quarantine landed: vacuous test";
  expectIdentical(On, Off, "scripted poison, snapshot on vs off");
}

TEST(SnapshotDifferentialTest, DeathOnlyChaosIdenticalOnOff) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  // Hard deaths only: every rebuild flows through the supervisor's
  // handleDeath → rebuildWorker, the exact path the snapshot replaces.
  Opts.FaultTemplate.site(FaultSite::WorkerCrash) = {};
  Opts.FaultTemplate.site(FaultSite::WorkerDeath) = {0.08, 1, 0};
  constexpr uint64_t N = 96;

  RunResult On = runPool(M, Opts, 3, true, N);
  RunResult Off = runPool(M, Opts, 3, false, N);
  EXPECT_GT(On.Books.WorkerDeaths, 0u) << "no death landed: vacuous test";
  EXPECT_EQ(On.Books.WorkerRestarts, On.Books.WorkerDeaths);
  expectIdentical(On, Off, "death-only chaos, snapshot on vs off");
}

} // namespace
