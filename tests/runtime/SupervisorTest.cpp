//===- tests/runtime/SupervisorTest.cpp - supervision layer tests ---------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pool's supervision layer (DESIGN.md §10): crash containment and
// worker rebuild, bounded retries with poison quarantine, worker-death
// repair, unrecoverable-pool-death semantics (submit fails instead of
// deadlocking), deterministic load shedding, cooperative cancellation,
// the exact accounting identity Submitted == Completed + Shed + Poisoned,
// and lifecycle-misuse hardening.
//
//===----------------------------------------------------------------------===//

#include "runtime/WorkerPool.h"

#include "ir/IRBuilder.h"
#include "rng/RdRand.h"

#include "gtest/gtest.h"

#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace smokestack;

namespace {

/// driver(): folds two smokestack.rand draws into a byte (the same shape
/// the WorkerPool determinism tests use).
void buildRandModule(Module &M) {
  IRBuilder B(M);
  Function *Rand = M.getOrInsertDeclaration("smokestack.rand", B.i64(), {});
  Function *Driver = M.createFunction("driver", B.i64(), {});
  B.setInsertPoint(Driver->createBlock("entry"));
  Value *A = B.call(Rand, {});
  Value *C = B.call(Rand, {});
  B.ret(B.and_(B.add(A, C), B.constI64(0xff)));
}

/// spin(): a counted loop long enough that the interpreter's cooperative
/// cancel poll (every 1024 fuel steps) is guaranteed to fire mid-run.
void buildSpinModule(Module &M, uint64_t Iterations) {
  IRBuilder B(M);
  Function *F = M.createFunction("spin", B.i64(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  BasicBlock *Done = F->createBlock("done");
  B.setInsertPoint(Entry);
  AllocaInst *Ctr = B.alloca_(B.i64(), "ctr");
  B.store(B.constI64(0), Ctr);
  B.br(Loop);
  B.setInsertPoint(Loop);
  Value *V = B.load(B.i64(), Ctr);
  Value *Next = B.add(V, B.constI64(1));
  B.store(Next, Ctr);
  B.condBr(B.icmp(ICmpInst::Predicate::ULT, Next, B.constI64(Iterations)),
           Loop, Done);
  B.setInsertPoint(Done);
  B.ret(B.constI64(13));
}

PoolOptions chaosOptions(uint64_t RootSeed = 7) {
  PoolOptions Opts;
  Opts.RootSeed = RootSeed;
  Opts.Function = "driver";
  Opts.QueueCapacity = 32;
  Opts.InjectFaults = true;
  Opts.FaultTemplate.site(FaultSite::RdRandStep) = {0.15,
                                                    RdRandSource::RetryLimit,
                                                    0};
  Opts.FaultTemplate.site(FaultSite::RekeyEntropy) = {0.4, 1, 0};
  Opts.FaultTemplate.site(FaultSite::WorkerCrash) = {0.2, 1, 0};
  Opts.FaultTemplate.site(FaultSite::WorkerDeath) = {0.05, 1, 0};
  Opts.Supervision.AttemptsMin = 2;
  Opts.Supervision.AttemptsMax = 5;
  Opts.Supervision.HeartbeatMillis = 5;
  return Opts;
}

struct RunResult {
  std::vector<PoolOutcome> Outcomes;
  PoolBooks Books;
};

RunResult runChaos(Module &M, PoolOptions Opts, unsigned Workers,
                   uint64_t NumRequests) {
  Opts.Workers = Workers;
  WorkerPool Pool(M, Opts);
  Pool.start();
  for (uint64_t I = 0; I != NumRequests; ++I)
    EXPECT_TRUE(Pool.submit({I, {}}));
  RunResult R;
  R.Outcomes = Pool.finish();
  R.Books = Pool.books();
  return R;
}

void expectIdenticalChaos(const RunResult &A, const RunResult &B,
                          const char *What) {
  ASSERT_EQ(A.Outcomes.size(), B.Outcomes.size()) << What;
  for (size_t I = 0; I != A.Outcomes.size(); ++I) {
    EXPECT_EQ(A.Outcomes[I].Index, B.Outcomes[I].Index) << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Trap, B.Outcomes[I].Trap) << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].ReturnValue, B.Outcomes[I].ReturnValue)
        << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Steps, B.Outcomes[I].Steps) << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Attempts, B.Outcomes[I].Attempts)
        << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Poisoned, B.Outcomes[I].Poisoned)
        << What << " @" << I;
  }
  EXPECT_EQ(A.Books.Requests, B.Books.Requests) << What;
  EXPECT_EQ(A.Books.RequestTraps, B.Books.RequestTraps) << What;
  EXPECT_EQ(A.Books.Rng.DrawsServed, B.Books.Rng.DrawsServed) << What;
  EXPECT_EQ(A.Books.Completed, B.Books.Completed) << What;
  EXPECT_EQ(A.Books.Poisoned, B.Books.Poisoned) << What;
  EXPECT_EQ(A.Books.CrashesContained, B.Books.CrashesContained) << What;
  EXPECT_EQ(A.Books.WorkerDeaths, B.Books.WorkerDeaths) << What;
  EXPECT_EQ(A.Books.Retries, B.Books.Retries) << What;
  EXPECT_EQ(A.Books.PoisonedIndices, B.Books.PoisonedIndices) << What;
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    EXPECT_EQ(A.Books.InjectedProbes[S], B.Books.InjectedProbes[S])
        << What << " site " << S;
    EXPECT_EQ(A.Books.InjectedEvents[S], B.Books.InjectedEvents[S])
        << What << " site " << S;
  }
}

TEST(SupervisorTest, CrashesAreContainedAndRetriedToCompletion) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  // Crashes only (no deaths): with a generous attempt budget nearly every
  // request should still complete; a few may exhaust the budget.
  Opts.FaultTemplate.site(FaultSite::WorkerDeath) = {};
  Opts.Supervision.AttemptsMin = 6;
  Opts.Supervision.AttemptsMax = 6;

  RunResult R = runChaos(M, Opts, 4, 128);
  EXPECT_TRUE(R.Books.accountingIdentityHolds());
  EXPECT_EQ(R.Books.Submitted, 128u);
  EXPECT_EQ(R.Outcomes.size(), 128u) << "every request reached a terminal state";
  EXPECT_GT(R.Books.CrashesContained, 0u) << "no crash landed: vacuous test";
  EXPECT_GT(R.Books.Retries, 0u);
  EXPECT_EQ(R.Books.WorkerDeaths, 0u);
  // p(crash)=0.2 over 6 independent attempts: poisoning a request takes
  // p^6 = 6.4e-5 luck; none of the 128 should be quarantined.
  EXPECT_EQ(R.Books.Poisoned, 0u);
  EXPECT_EQ(R.Books.Completed, 128u);
  // Retried requests must report the attempts they actually burned.
  bool SawRetriedOutcome = false;
  for (const PoolOutcome &O : R.Outcomes)
    SawRetriedOutcome = SawRetriedOutcome || O.Attempts > 1;
  EXPECT_TRUE(SawRetriedOutcome);
}

TEST(SupervisorTest, PoisonRequestsAreQuarantinedAfterBudget) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  Opts.FaultTemplate.site(FaultSite::WorkerCrash) = {};
  Opts.FaultTemplate.site(FaultSite::WorkerDeath) = {};
  Opts.Supervision.AttemptsMin = 3;
  Opts.Supervision.AttemptsMax = 3;
  // Requests with Index % 7 == 3 crash on every attempt, deterministically:
  // true poison requests in the DOP sense — no retry budget can save them.
  Opts.PlanForRequest = [](uint64_t Index, FaultPlan &Plan) {
    if (Index % 7 == 3)
      Plan.site(FaultSite::WorkerCrash) = {0.0, 1, 1};
  };

  constexpr uint64_t N = 70;
  RunResult R = runChaos(M, Opts, 3, N);
  EXPECT_TRUE(R.Books.accountingIdentityHolds());
  ASSERT_EQ(R.Outcomes.size(), N);

  std::vector<uint64_t> ExpectedPoison;
  for (uint64_t I = 0; I != N; ++I)
    if (I % 7 == 3)
      ExpectedPoison.push_back(I);
  EXPECT_EQ(R.Books.PoisonedIndices, ExpectedPoison);
  EXPECT_EQ(R.Books.Poisoned, ExpectedPoison.size());

  for (const PoolOutcome &O : R.Outcomes) {
    if (O.Index % 7 == 3) {
      EXPECT_TRUE(O.Poisoned) << O.Index;
      EXPECT_EQ(O.Trap, TrapKind::WorkerCrash) << O.Index;
      EXPECT_EQ(O.Attempts, 3u) << "must burn the whole budget";
      EXPECT_FALSE(O.ok());
    } else {
      EXPECT_FALSE(O.Poisoned) << O.Index;
      EXPECT_EQ(O.Attempts, 1u);
    }
  }
}

TEST(SupervisorTest, WorkerDeathsAreRepairedBySupervisor) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  Opts.FaultTemplate.site(FaultSite::WorkerCrash) = {};
  Opts.FaultTemplate.site(FaultSite::WorkerDeath) = {0.08, 1, 0};

  constexpr uint64_t N = 96;
  RunResult R = runChaos(M, Opts, 3, N);
  EXPECT_TRUE(R.Books.accountingIdentityHolds());
  EXPECT_EQ(R.Outcomes.size(), N) << "deaths must not lose requests";
  EXPECT_GT(R.Books.WorkerDeaths, 0u) << "no death landed: vacuous test";
  EXPECT_EQ(R.Books.WorkerRestarts, R.Books.WorkerDeaths)
      << "every corpse is replaced while the restart budget lasts";
}

TEST(SupervisorTest, ChaosOutcomesInvariantUnderWorkerCountAndRerun) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();

  constexpr uint64_t N = 96;
  RunResult One = runChaos(M, Opts, 1, N);
  RunResult Two = runChaos(M, Opts, 2, N);
  RunResult Eight = runChaos(M, Opts, 8, N);
  RunResult Again = runChaos(M, Opts, 2, N);

  // The chaos must actually bite for the invariance to mean anything.
  EXPECT_GT(One.Books.CrashesContained, 0u);
  EXPECT_GT(One.Books.WorkerDeaths, 0u);
  EXPECT_TRUE(One.Books.accountingIdentityHolds());

  expectIdenticalChaos(One, Two, "workers=1 vs workers=2");
  expectIdenticalChaos(One, Eight, "workers=1 vs workers=8");
  expectIdenticalChaos(Two, Again, "rerun with same root seed");
}

TEST(SupervisorTest, UnrecoverablePoolDeathFailsSubmitInsteadOfDeadlocking) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 1;
  Opts.Function = "driver";
  Opts.QueueCapacity = 4;
  Opts.InjectFaults = true;
  // Every attempt kills the worker outright, and there is no restart
  // budget: the pool is unrecoverable by construction.
  Opts.FaultTemplate.site(FaultSite::WorkerDeath) = {0.0, 1, 1};
  Opts.Supervision.MaxWorkerRestarts = 0;
  Opts.Supervision.HeartbeatMillis = 5;

  WorkerPool Pool(M, Opts);
  Pool.start();

  // Keep submitting until the dead pool's closed queue rejects us. If the
  // supervisor failed to close the queue this would deadlock on the full
  // queue (the driver would flag the hang); the bound is generous slack.
  uint64_t Submitted = 0;
  bool SawReject = false;
  for (uint64_t I = 0; I != 10'000; ++I) {
    ++Submitted;
    if (!Pool.submit({I, {}})) {
      SawReject = true;
      break;
    }
  }
  EXPECT_TRUE(SawReject) << "submit() must start failing once the pool dies";

  std::vector<PoolOutcome> Outcomes = Pool.finish();
  const PoolBooks &B = Pool.books();
  EXPECT_TRUE(B.accountingIdentityHolds());
  EXPECT_EQ(B.Submitted, Submitted);
  EXPECT_EQ(B.WorkerDeaths, 1u);
  EXPECT_EQ(B.WorkerRestarts, 0u);
  EXPECT_EQ(B.Completed, 0u) << "nobody ever served";
  EXPECT_GT(B.Poisoned, 0u) << "the backlog is quarantined, not lost";
  // The death-stashed request still had attempt budget, so it was requeued
  // — and then drained as pool-death poison along with the backlog.
  EXPECT_EQ(B.Poisoned, B.PoisonedPoolDeath);
  EXPECT_EQ(B.Retries, 1u);
  EXPECT_EQ(Outcomes.size(), B.Poisoned);
}

TEST(SupervisorTest, EscapedHookExceptionIsContainedAndQuarantined) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "driver";
  Opts.InjectFaults = true;
  Opts.Supervision.AttemptsMin = 2;
  Opts.Supervision.AttemptsMax = 2;
  // A real bug, not an injected probe: the per-request hook throws for one
  // index. The pool must survive it and quarantine the request.
  Opts.PlanForRequest = [](uint64_t Index, FaultPlan &) {
    if (Index == 11)
      throw std::runtime_error("hook bug");
  };

  constexpr uint64_t N = 24;
  RunResult R;
  {
    WorkerPool Pool(M, Opts);
    Pool.start();
    for (uint64_t I = 0; I != N; ++I)
      EXPECT_TRUE(Pool.submit({I, {}}));
    R.Outcomes = Pool.finish();
    R.Books = Pool.books();
  }
  EXPECT_TRUE(R.Books.accountingIdentityHolds());
  ASSERT_EQ(R.Outcomes.size(), N);
  EXPECT_EQ(R.Books.Poisoned, 1u);
  ASSERT_EQ(R.Books.PoisonedIndices.size(), 1u);
  EXPECT_EQ(R.Books.PoisonedIndices[0], 11u);
  EXPECT_EQ(R.Books.CrashesContained, 2u) << "one per attempt";
  for (const PoolOutcome &O : R.Outcomes)
    if (O.Index != 11) {
      EXPECT_TRUE(O.ok()) << O.Index;
    }
}

TEST(SupervisorTest, TrapRateBreakerShedsDeterministicallyByCounters) {
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "driver";
  Opts.QueueCapacity = 8;
  Opts.InjectFaults = true;
  // Whole-chain blackout: the DRNG is dead and the AES fallback can never
  // key itself, so every request fail-closes into a RandomnessFailure
  // trap. The breaker must open once enough samples accumulate.
  Opts.FaultTemplate.site(FaultSite::RdRandDeath) = {0.0, 1, 1};
  Opts.FaultTemplate.site(FaultSite::RekeyEntropy) = {0.0, 1, 1};
  Opts.Admission.BreakerTrapRate = 0.5;
  Opts.Admission.BreakerMinSamples = 16;

  WorkerPool Pool(M, Opts);
  Pool.start();
  constexpr uint64_t N = 400;
  for (uint64_t I = 0; I != N; ++I)
    Pool.submit({I, {}});
  std::vector<PoolOutcome> Outcomes = Pool.finish();
  const PoolBooks &B = Pool.books();

  EXPECT_TRUE(B.accountingIdentityHolds());
  EXPECT_EQ(B.Submitted, N);
  EXPECT_GT(B.RequestTraps, 0u);
  EXPECT_GT(B.ShedByBreaker, 0u) << "the breaker never opened";
  EXPECT_EQ(B.Completed + B.Shed + B.Poisoned, N);
  EXPECT_EQ(Outcomes.size(), B.Completed + B.Poisoned)
      << "shed requests have no outcome record — they never ran";
}

TEST(SupervisorTest, ShedNewestPolicyShedsOnFullQueueAndKeepsBooks) {
  Module M("chaos");
  buildSpinModule(M, 20'000); // slow enough that the queue actually fills
  PoolOptions Opts;
  Opts.Workers = 1;
  Opts.Function = "spin";
  Opts.QueueCapacity = 2;
  Opts.Admission.Policy = AdmissionOptions::ShedPolicy::ShedNewest;

  WorkerPool Pool(M, Opts);
  Pool.start();
  constexpr uint64_t N = 64;
  uint64_t Accepted = 0;
  for (uint64_t I = 0; I != N; ++I)
    if (Pool.submit({I, {}}))
      ++Accepted;
  std::vector<PoolOutcome> Outcomes = Pool.finish();
  const PoolBooks &B = Pool.books();

  EXPECT_TRUE(B.accountingIdentityHolds());
  EXPECT_EQ(B.Submitted, N);
  EXPECT_EQ(B.Accepted, Accepted);
  EXPECT_GT(B.ShedQueueFull, 0u) << "one slow worker behind a capacity-2 "
                                    "queue must shed some of 64 rapid submits";
  EXPECT_EQ(Outcomes.size(), Accepted);
}

TEST(SupervisorTest, ShutdownNowCancelsInFlightRunsAsPoisoned) {
  Module M("chaos");
  buildSpinModule(M, 50'000'000); // far longer than the test will wait
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "spin";
  Opts.QueueCapacity = 16;

  WorkerPool Pool(M, Opts);
  Pool.start();
  constexpr uint64_t N = 8;
  for (uint64_t I = 0; I != N; ++I)
    EXPECT_TRUE(Pool.submit({I, {}}));
  // Let the workers get into the spin, then pull the plug. The cooperative
  // cancel poll (every 1024 steps) turns the endless runs into
  // TrapKind::WorkerCrash, booked as poisoned; finish() then drains the
  // queued remainder the same way instead of running it for minutes.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Pool.shutdownNow();
  std::vector<PoolOutcome> Outcomes = Pool.finish();
  const PoolBooks &B = Pool.books();

  EXPECT_TRUE(B.accountingIdentityHolds());
  EXPECT_EQ(B.Submitted, N);
  EXPECT_EQ(B.Completed, 0u) << "no run can finish 50M steps here";
  EXPECT_EQ(B.Poisoned, N);
  EXPECT_EQ(B.PoisonedPoolDeath, N);
  ASSERT_EQ(Outcomes.size(), N);
  for (const PoolOutcome &O : Outcomes) {
    EXPECT_TRUE(O.Poisoned);
    EXPECT_EQ(O.Trap, TrapKind::WorkerCrash);
  }
}

TEST(SupervisorTest, StallAlarmBooksWedgedWorkerOnceAndCancelUnwedges) {
  Module M("chaos");
  buildSpinModule(M, 50'000'000); // far longer than the test will wait
  PoolOptions Opts;
  Opts.Workers = 1;
  Opts.Function = "spin";
  Opts.QueueCapacity = 4;
  Opts.Supervision.HeartbeatMillis = 5;

  WorkerPool Pool(M, Opts);
  Pool.start();
  EXPECT_TRUE(Pool.submit({0, {}}));
  // The worker bumps its heartbeat once per request pop, then wedges in
  // the spin. Two supervisor samples across an unmoved beat book exactly
  // one stall alarm (per-stall dedup); sleep long enough for several
  // sampling periods so the alarm is guaranteed, not racy.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Un-wedge deterministically: the cooperative cancel flag is polled
  // every 1024 interpreter steps, so the endless run ends as a poisoned
  // cancellation — no reliance on fuel or timing.
  Pool.shutdownNow();
  std::vector<PoolOutcome> Outcomes = Pool.finish();
  const PoolBooks &B = Pool.books();

  EXPECT_GE(B.StallAlarms, 1u) << "the wedged worker was never sampled";
  EXPECT_TRUE(B.accountingIdentityHolds());
  EXPECT_EQ(B.Submitted, 1u);
  EXPECT_EQ(B.Completed, 0u) << "no run can finish 50M steps here";
  EXPECT_EQ(B.Poisoned, 1u);
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_TRUE(Outcomes[0].Poisoned);
  EXPECT_EQ(Outcomes[0].Trap, TrapKind::WorkerCrash);
}

TEST(SupervisorTest, PerRequestDeltasSumToAggregateBooks) {
  // The foundation under process-shard accounting: the per-request deltas
  // streamed through OnOutcomeBooks, summed, must reproduce the pool's own
  // aggregate books exactly — under chaos, where crashes, deaths, retries,
  // and injected faults all have to land on some request's delta.
  Module M("chaos");
  buildRandModule(M);
  PoolOptions Opts = chaosOptions();
  constexpr uint64_t N = 96;

  RequestBooks Sum;
  std::mutex SumMtx;
  uint64_t Hooked = 0;
  Opts.OnOutcomeBooks = [&](const PoolOutcome &, const RequestBooks &D) {
    std::lock_guard<std::mutex> Lock(SumMtx);
    Sum += D;
    ++Hooked;
  };
  Opts.Workers = 3;
  WorkerPool Pool(M, Opts);
  Pool.start();
  for (uint64_t I = 0; I != N; ++I)
    EXPECT_TRUE(Pool.submit({I, {}}));
  Pool.finish();
  const PoolBooks &B = Pool.books();
  EXPECT_EQ(Hooked, N) << "one delta per terminal outcome";

  // The chaos must bite for the sum to be a meaningful reconstruction.
  EXPECT_GT(B.CrashesContained, 0u);
  EXPECT_GT(B.WorkerDeaths, 0u);

  PoolBooks R;
  Sum.addTo(R);
  EXPECT_EQ(R.Requests, B.Requests);
  EXPECT_EQ(R.RequestTraps, B.RequestTraps);
  EXPECT_EQ(R.RequestRecoveries, B.RequestRecoveries);
  EXPECT_EQ(R.CrashesContained, B.CrashesContained);
  EXPECT_EQ(R.WorkerDeaths, B.WorkerDeaths);
  EXPECT_EQ(R.WorkerRestarts, B.WorkerRestarts);
  EXPECT_EQ(R.Retries, B.Retries);
  EXPECT_EQ(R.PoisonedPoolDeath, B.PoisonedPoolDeath);
  EXPECT_EQ(R.Rng.DrawsServed, B.Rng.DrawsServed);
  EXPECT_EQ(R.Rng.DegradedDraws, B.Rng.DegradedDraws);
  EXPECT_EQ(R.Rng.FallbackDraws, B.Rng.FallbackDraws);
  EXPECT_EQ(R.Rng.FailClosedDraws, B.Rng.FailClosedDraws);
  EXPECT_EQ(R.Rng.Failovers, B.Rng.Failovers);
  EXPECT_EQ(R.Rng.Recoveries, B.Rng.Recoveries);
  EXPECT_EQ(R.Rng.RetriesUsed, B.Rng.RetriesUsed);
  EXPECT_EQ(R.Rng.EmergencyDraws, B.Rng.EmergencyDraws);
  EXPECT_EQ(R.Rng.DrngRetryFailures, B.Rng.DrngRetryFailures);
  EXPECT_EQ(R.Rng.DrngFailureEvents, B.Rng.DrngFailureEvents);
  EXPECT_EQ(R.Rng.AesRekeys, B.Rng.AesRekeys);
  EXPECT_EQ(R.Rng.FailedRekeys, B.Rng.FailedRekeys);
  EXPECT_EQ(R.Rng.StaleKeyDraws, B.Rng.StaleKeyDraws);
  EXPECT_EQ(R.Rng.UnkeyedDraws, B.Rng.UnkeyedDraws);
  EXPECT_EQ(R.Rng.BufferRefills, B.Rng.BufferRefills);
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    EXPECT_EQ(R.InjectedProbes[S], B.InjectedProbes[S]) << "site " << S;
    EXPECT_EQ(R.InjectedEvents[S], B.InjectedEvents[S]) << "site " << S;
  }
}

// ---- Lifecycle-misuse hardening ----------------------------------------

TEST(WorkerPoolLifecycleTest, FinishBeforeStartQuarantinesQueuedRequests) {
  Module M("pool");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "driver";
  WorkerPool Pool(M, Opts);

  // Submitting before start() queues the work (nobody serves yet).
  EXPECT_TRUE(Pool.submit({0, {}}));
  EXPECT_TRUE(Pool.submit({1, {}}));

  std::vector<PoolOutcome> Outcomes = Pool.finish();
  const PoolBooks &B = Pool.books();
  EXPECT_TRUE(B.accountingIdentityHolds());
  ASSERT_EQ(Outcomes.size(), 2u);
  EXPECT_TRUE(Outcomes[0].Poisoned);
  EXPECT_TRUE(Outcomes[1].Poisoned);
  EXPECT_EQ(B.Poisoned, 2u);
  EXPECT_EQ(B.PoisonedPoolDeath, 2u);
  EXPECT_EQ(B.Completed, 0u);

  // start() after finish() is a hardened no-op; submit stays closed.
  Pool.start();
  EXPECT_FALSE(Pool.submit({2, {}}));
  EXPECT_EQ(Pool.books().accountingIdentityHolds(), true);
}

TEST(WorkerPoolLifecycleTest, DoubleStartAndDoubleFinishAreIdempotent) {
  Module M("pool");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "driver";
  WorkerPool Pool(M, Opts);
  Pool.start();
  Pool.start(); // must not relaunch threads or crash
  for (uint64_t I = 0; I != 6; ++I)
    EXPECT_TRUE(Pool.submit({I, {}}));
  EXPECT_EQ(Pool.finish().size(), 6u);
  EXPECT_EQ(Pool.finish().size(), 0u) << "second finish() is empty, not UB";
  EXPECT_TRUE(Pool.books().accountingIdentityHolds());
}

TEST(WorkerPoolLifecycleTest, SubmitBeforeStartIsServedAfterStart) {
  Module M("pool");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "driver";
  WorkerPool Pool(M, Opts);
  EXPECT_TRUE(Pool.submit({0, {}}));
  Pool.start();
  EXPECT_TRUE(Pool.submit({1, {}}));
  std::vector<PoolOutcome> Outcomes = Pool.finish();
  ASSERT_EQ(Outcomes.size(), 2u);
  EXPECT_TRUE(Outcomes[0].ok());
  EXPECT_TRUE(Outcomes[1].ok());
  EXPECT_TRUE(Pool.books().accountingIdentityHolds());
}

} // namespace
