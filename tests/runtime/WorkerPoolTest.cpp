//===- tests/runtime/WorkerPoolTest.cpp - pool determinism tests ----------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The worker pool's replay contract: the sorted outcome stream and the
// aggregate books are a pure function of (module, options, root seed,
// request stream) — bit-identical for any worker count and across reruns.
// Also covers the shared decoded program and queue shutdown semantics.
//
//===----------------------------------------------------------------------===//

#include "runtime/WorkerPool.h"

#include "ir/IRBuilder.h"
#include "rng/RdRand.h"

#include "gtest/gtest.h"

using namespace smokestack;

namespace {

/// driver(): folds two smokestack.rand draws into a byte. Under an
/// injected whole-chain blackout the first draw raises a recoverable
/// RandomnessFailure trap.
void buildRandModule(Module &M) {
  IRBuilder B(M);
  Function *Rand = M.getOrInsertDeclaration("smokestack.rand", B.i64(), {});
  Function *Driver = M.createFunction("driver", B.i64(), {});
  B.setInsertPoint(Driver->createBlock("entry"));
  Value *A = B.call(Rand, {});
  Value *C = B.call(Rand, {});
  B.ret(B.and_(B.add(A, C), B.constI64(0xff)));
}

/// One pool run over NumRequests with a faulted tail; returns outcomes
/// (sorted by the pool) and the aggregate books.
struct RunResult {
  std::vector<PoolOutcome> Outcomes;
  PoolBooks Books;
};

RunResult runPool(Module &M, unsigned Workers, uint64_t NumRequests) {
  PoolOptions Opts;
  Opts.Workers = Workers;
  Opts.RootSeed = 7;
  Opts.Function = "driver";
  Opts.InjectFaults = true;
  Opts.FaultTemplate.site(FaultSite::RdRandStep) = {0.15,
                                                    RdRandSource::RetryLimit,
                                                    0};
  Opts.FaultTemplate.site(FaultSite::RekeyEntropy) = {0.4, 1, 0};
  // Permanent DRNG death for the last quarter of the request space: with
  // rekey entropy also failing, some of those requests fail closed.
  Opts.PlanForRequest = [NumRequests](uint64_t Index, FaultPlan &Plan) {
    if (Index >= NumRequests - NumRequests / 4)
      Plan.site(FaultSite::RdRandDeath) = {0.0, 1, 1};
  };

  WorkerPool Pool(M, Opts);
  Pool.start();
  for (uint64_t I = 0; I != NumRequests; ++I)
    Pool.submit({I, {}});
  RunResult R;
  R.Outcomes = Pool.finish();
  R.Books = Pool.books();
  return R;
}

void expectIdentical(const RunResult &A, const RunResult &B,
                     const char *What) {
  ASSERT_EQ(A.Outcomes.size(), B.Outcomes.size()) << What;
  for (size_t I = 0; I != A.Outcomes.size(); ++I) {
    EXPECT_EQ(A.Outcomes[I].Index, B.Outcomes[I].Index) << What;
    EXPECT_EQ(A.Outcomes[I].Trap, B.Outcomes[I].Trap) << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].ReturnValue, B.Outcomes[I].ReturnValue)
        << What << " @" << I;
    EXPECT_EQ(A.Outcomes[I].Steps, B.Outcomes[I].Steps) << What << " @" << I;
  }
  EXPECT_EQ(A.Books.Requests, B.Books.Requests) << What;
  EXPECT_EQ(A.Books.RequestTraps, B.Books.RequestTraps) << What;
  EXPECT_EQ(A.Books.RequestRecoveries, B.Books.RequestRecoveries) << What;
  EXPECT_EQ(A.Books.Rng.DrawsServed, B.Books.Rng.DrawsServed) << What;
  EXPECT_EQ(A.Books.Rng.DegradedDraws, B.Books.Rng.DegradedDraws) << What;
  EXPECT_EQ(A.Books.Rng.FallbackDraws, B.Books.Rng.FallbackDraws) << What;
  EXPECT_EQ(A.Books.Rng.FailClosedDraws, B.Books.Rng.FailClosedDraws)
      << What;
  EXPECT_EQ(A.Books.Rng.AesRekeys, B.Books.Rng.AesRekeys) << What;
  EXPECT_EQ(A.Books.Rng.FailedRekeys, B.Books.Rng.FailedRekeys) << What;
  for (unsigned S = 0; S != NumFaultSites; ++S) {
    EXPECT_EQ(A.Books.InjectedProbes[S], B.Books.InjectedProbes[S])
        << What << " site " << S;
    EXPECT_EQ(A.Books.InjectedEvents[S], B.Books.InjectedEvents[S])
        << What << " site " << S;
  }
}

TEST(WorkerPoolTest, AggregateBooksInvariantUnderWorkerCount) {
  Module M("pool");
  buildRandModule(M);
  constexpr uint64_t N = 64;

  RunResult One = runPool(M, 1, N);
  RunResult Two = runPool(M, 2, N);
  RunResult Eight = runPool(M, 8, N);

  // The run must actually exercise the interesting paths, or the
  // invariance claim is vacuous.
  EXPECT_EQ(One.Books.Requests, N);
  EXPECT_GT(One.Books.Rng.FallbackDraws, 0u) << "no step faults landed";
  EXPECT_GT(One.Books.RequestTraps, 0u) << "no fail-closed trap landed";
  EXPECT_EQ(One.Books.RequestTraps, One.Books.RequestRecoveries);

  expectIdentical(One, Two, "workers=1 vs workers=2");
  expectIdentical(One, Eight, "workers=1 vs workers=8");
}

TEST(WorkerPoolTest, RerunWithSameRootSeedIsBitIdentical) {
  Module M("pool");
  buildRandModule(M);
  RunResult A = runPool(M, 4, 48);
  RunResult B = runPool(M, 4, 48);
  expectIdentical(A, B, "rerun");
}

TEST(WorkerPoolTest, OutcomesAreSortedAndComplete) {
  Module M("pool");
  buildRandModule(M);
  constexpr uint64_t N = 32;
  RunResult R = runPool(M, 3, N);
  ASSERT_EQ(R.Outcomes.size(), N);
  for (uint64_t I = 0; I != N; ++I)
    EXPECT_EQ(R.Outcomes[I].Index, I);
}

TEST(WorkerPoolTest, SharedProgramCoversEveryDefinition) {
  Module M("pool");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "driver";
  WorkerPool Pool(M, Opts);
  // Only definitions are decoded; smokestack.rand is a declaration.
  EXPECT_EQ(Pool.sharedProgram().numFunctions(), 1u);
  const Function *Driver = M.getFunction("driver");
  ASSERT_NE(Driver, nullptr);
  EXPECT_NE(Pool.sharedProgram().find(Driver), nullptr);

  Pool.start();
  for (uint64_t I = 0; I != 8; ++I)
    Pool.submit({I, {}});
  std::vector<PoolOutcome> Outcomes = Pool.finish();
  ASSERT_EQ(Outcomes.size(), 8u);
  for (const PoolOutcome &O : Outcomes)
    EXPECT_TRUE(O.ok());
}

TEST(WorkerPoolTest, SubmitAfterFinishIsRejected) {
  Module M("pool");
  buildRandModule(M);
  PoolOptions Opts;
  Opts.Workers = 2;
  Opts.Function = "driver";
  WorkerPool Pool(M, Opts);
  Pool.start();
  EXPECT_TRUE(Pool.submit({0, {}}));
  EXPECT_EQ(Pool.finish().size(), 1u);
  EXPECT_FALSE(Pool.submit({1, {}})) << "the queue is closed after finish()";
}

} // namespace
