//===- tests/support/AlignTest.cpp - Alignment helper tests --------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Align.h"

#include <gtest/gtest.h>

using namespace smokestack;

TEST(AlignTest, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(4));
  EXPECT_FALSE(isPowerOf2(6));
  EXPECT_TRUE(isPowerOf2(1ULL << 63));
  EXPECT_FALSE(isPowerOf2((1ULL << 63) + 1));
}

TEST(AlignTest, NextPowerOf2) {
  EXPECT_EQ(nextPowerOf2(1), 1u);
  EXPECT_EQ(nextPowerOf2(2), 2u);
  EXPECT_EQ(nextPowerOf2(3), 4u);
  EXPECT_EQ(nextPowerOf2(5), 8u);
  EXPECT_EQ(nextPowerOf2(17), 32u);
  // The paper's P-BOX size optimization rounds N! up to a power of two;
  // 5! = 120 -> 128 and 6! = 720 -> 1024 are the interesting small cases.
  EXPECT_EQ(nextPowerOf2(120), 128u);
  EXPECT_EQ(nextPowerOf2(720), 1024u);
}

TEST(AlignTest, Log2OfPowerOf2) {
  EXPECT_EQ(log2OfPowerOf2(1), 0u);
  EXPECT_EQ(log2OfPowerOf2(2), 1u);
  EXPECT_EQ(log2OfPowerOf2(128), 7u);
  EXPECT_EQ(log2OfPowerOf2(1ULL << 40), 40u);
}

TEST(AlignTest, AlignTo) {
  EXPECT_EQ(alignTo(0, 8), 0u);
  EXPECT_EQ(alignTo(1, 8), 8u);
  EXPECT_EQ(alignTo(8, 8), 8u);
  EXPECT_EQ(alignTo(9, 8), 16u);
  EXPECT_EQ(alignTo(13, 1), 13u);
  EXPECT_EQ(alignTo(13, 4), 16u);
  EXPECT_EQ(alignTo(17, 16), 32u);
}

TEST(AlignTest, AlignToMatchesAlgorithmOneAlign) {
  // The paper's ALIGN(ind, alignment) is:
  //   if ind % alignment == 0 -> ind, else (ind / alignment + 1) * alignment.
  // Check the bit-mask implementation is equivalent over a dense sweep.
  for (uint64_t Alignment : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (uint64_t Ind = 0; Ind != 512; ++Ind) {
      uint64_t Reference =
          Ind % Alignment == 0 ? Ind : (Ind / Alignment + 1) * Alignment;
      EXPECT_EQ(alignTo(Ind, Alignment), Reference)
          << "ind=" << Ind << " align=" << Alignment;
    }
  }
}

TEST(AlignTest, IsAligned) {
  EXPECT_TRUE(isAligned(0, 16));
  EXPECT_TRUE(isAligned(32, 16));
  EXPECT_FALSE(isAligned(33, 16));
  EXPECT_TRUE(isAligned(33, 1));
}
