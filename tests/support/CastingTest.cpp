//===- tests/support/CastingTest.cpp - isa/cast/dyn_cast tests -----------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

struct Shape {
  enum class Kind { Circle, Square } TheKind;
  explicit Shape(Kind K) : TheKind(K) {}
};

struct Circle : Shape {
  Circle() : Shape(Kind::Circle) {}
  static bool classof(const Shape *S) { return S->TheKind == Kind::Circle; }
  int Radius = 7;
};

struct Square : Shape {
  Square() : Shape(Kind::Square) {}
  static bool classof(const Shape *S) { return S->TheKind == Kind::Square; }
};

} // namespace

TEST(CastingTest, Isa) {
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(isa<Circle>(S));
  EXPECT_FALSE(isa<Square>(S));
}

TEST(CastingTest, Cast) {
  Circle C;
  Shape *S = &C;
  EXPECT_EQ(cast<Circle>(S)->Radius, 7);
}

TEST(CastingTest, CastConst) {
  Circle C;
  const Shape *S = &C;
  EXPECT_EQ(cast<Circle>(S)->Radius, 7);
}

TEST(CastingTest, DynCast) {
  Circle C;
  Shape *S = &C;
  EXPECT_NE(dyn_cast<Circle>(S), nullptr);
  EXPECT_EQ(dyn_cast<Square>(S), nullptr);
}

TEST(CastingTest, DynCastConst) {
  Square Sq;
  const Shape *S = &Sq;
  EXPECT_EQ(dyn_cast<Circle>(S), nullptr);
  EXPECT_NE(dyn_cast<Square>(S), nullptr);
}
