//===- tests/support/FormatTest.cpp - formatString tests -----------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <gtest/gtest.h>

using namespace smokestack;

TEST(FormatTest, Basic) {
  EXPECT_EQ(formatString("x=%d", 5), "x=5");
  EXPECT_EQ(formatString("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(formatString("%5.1f%%", 10.25), " 10.2%");
}

TEST(FormatTest, Empty) { EXPECT_EQ(formatString("%s", ""), ""); }

TEST(FormatTest, LongOutput) {
  std::string Long(500, 'x');
  EXPECT_EQ(formatString("%s", Long.c_str()), Long);
}
