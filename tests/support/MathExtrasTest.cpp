//===- tests/support/MathExtrasTest.cpp - Lehmer-code tests --------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/MathExtras.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>

using namespace smokestack;

TEST(MathExtrasTest, FactorialSmall) {
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(1), 1u);
  EXPECT_EQ(factorial(2), 2u);
  EXPECT_EQ(factorial(5), 120u);
  EXPECT_EQ(factorial(8), 40320u);
  EXPECT_EQ(factorial(10), 3628800u);
  EXPECT_EQ(factorial(20), 2432902008176640000ULL);
}

TEST(MathExtrasTest, DecodeIdentityIsFirstLexical) {
  auto Perm = decodeLehmer(0, 5);
  std::vector<unsigned> Identity = {0, 1, 2, 3, 4};
  EXPECT_EQ(Perm, Identity);
}

TEST(MathExtrasTest, DecodeLastIsReversed) {
  auto Perm = decodeLehmer(factorial(5) - 1, 5);
  std::vector<unsigned> Reversed = {4, 3, 2, 1, 0};
  EXPECT_EQ(Perm, Reversed);
}

/// Property: decodeLehmer enumerates permutations in the same order as
/// std::next_permutation, for every index. This is the oracle the paper's
/// Algorithm 1 lexical-order claim rests on.
class LehmerEnumerationTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LehmerEnumerationTest, MatchesNextPermutationOracle) {
  unsigned N = GetParam();
  std::vector<unsigned> Oracle(N);
  std::iota(Oracle.begin(), Oracle.end(), 0u);
  uint64_t Index = 0;
  do {
    ASSERT_EQ(decodeLehmer(Index, N), Oracle) << "index " << Index;
    ++Index;
  } while (std::next_permutation(Oracle.begin(), Oracle.end()));
  EXPECT_EQ(Index, factorial(N));
}

INSTANTIATE_TEST_SUITE_P(AllSmallSizes, LehmerEnumerationTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

/// Property: encodeLehmer is the inverse of decodeLehmer.
class LehmerRoundTripTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LehmerRoundTripTest, EncodeInvertsDecode) {
  unsigned N = GetParam();
  for (uint64_t Index = 0; Index != factorial(N); ++Index)
    ASSERT_EQ(encodeLehmer(decodeLehmer(Index, N)), Index);
}

INSTANTIATE_TEST_SUITE_P(AllSmallSizes, LehmerRoundTripTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(MathExtrasTest, DecodeLargeDomainSpotChecks) {
  // For N = 12 exhaustive checks are too slow; verify the round-trip on a
  // spread of indexes including both ends.
  unsigned N = 12;
  uint64_t Total = factorial(N);
  for (uint64_t Index : {uint64_t(0), uint64_t(1), Total / 3, Total / 2,
                         Total - 2, Total - 1}) {
    auto Perm = decodeLehmer(Index, N);
    // Must be a permutation of 0..N-1.
    std::vector<unsigned> Sorted = Perm;
    std::sort(Sorted.begin(), Sorted.end());
    for (unsigned I = 0; I != N; ++I)
      ASSERT_EQ(Sorted[I], I);
    ASSERT_EQ(encodeLehmer(Perm), Index);
  }
}
