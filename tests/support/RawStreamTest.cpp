//===- tests/support/RawStreamTest.cpp - RawOStream tests ----------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RawStream.h"

#include <gtest/gtest.h>

using namespace smokestack;

TEST(RawStreamTest, StringSinkBasics) {
  std::string Buffer;
  RawStringOStream OS(Buffer);
  OS << "hello" << ' ' << std::string("world");
  EXPECT_EQ(Buffer, "hello world");
}

TEST(RawStreamTest, Integers) {
  std::string Buffer;
  RawStringOStream OS(Buffer);
  OS << uint64_t(42) << ',' << int64_t(-7) << ',' << 13 << ',' << -2;
  EXPECT_EQ(Buffer, "42,-7,13,-2");
}

TEST(RawStreamTest, HexFormat) {
  std::string Buffer;
  RawStringOStream OS(Buffer);
  OS << hex(0xdeadbeef);
  EXPECT_EQ(Buffer, "0xdeadbeef");
}

TEST(RawStreamTest, Double) {
  std::string Buffer;
  RawStringOStream OS(Buffer);
  OS << 2.5;
  EXPECT_EQ(Buffer, "2.5");
}

TEST(RawStreamTest, OutsAndErrsAreDistinctSingletons) {
  EXPECT_EQ(&outs(), &outs());
  EXPECT_EQ(&errs(), &errs());
  EXPECT_NE(&outs(), &errs());
}
