//===- tests/support/StatisticsTest.cpp - Statistics helper tests --------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/SplitMix64.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace smokestack;

TEST(StatisticsTest, MeanAndStdDev) {
  std::vector<double> Samples = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(sampleMean(Samples), 5.0);
  EXPECT_NEAR(sampleStdDev(Samples), 2.138, 0.001);
  EXPECT_EQ(sampleMean({}), 0.0);
  std::vector<double> One = {3.0};
  EXPECT_EQ(sampleStdDev(One), 0.0);
}

TEST(StatisticsTest, ChiSquaredZeroForPerfectUniform) {
  std::vector<uint64_t> Counts(16, 100);
  EXPECT_DOUBLE_EQ(chiSquaredUniform(Counts), 0.0);
}

TEST(StatisticsTest, ChiSquaredLargeForConcentration) {
  std::vector<uint64_t> Counts(16, 0);
  Counts[3] = 1600;
  double Stat = chiSquaredUniform(Counts);
  EXPECT_GT(Stat, chiSquaredCritical999(15))
      << "a point mass must fail the uniformity test decisively";
}

TEST(StatisticsTest, CriticalValueSanity) {
  // Known chi-squared 0.999 quantiles: df=10 -> 29.59, df=100 -> 149.45.
  EXPECT_NEAR(chiSquaredCritical999(10), 29.59, 0.7);
  EXPECT_NEAR(chiSquaredCritical999(100), 149.45, 1.5);
}

TEST(StatisticsTest, UniformRandomPassesChiSquared) {
  SplitMix64 Rng(0x57a7);
  std::vector<uint64_t> Counts(64, 0);
  for (int I = 0; I != 64 * 500; ++I)
    ++Counts[Rng.nextBounded(64)];
  EXPECT_LT(chiSquaredUniform(Counts), chiSquaredCritical999(63));
}

TEST(StatisticsTest, ShannonEntropy) {
  std::vector<uint64_t> Uniform(8, 10);
  EXPECT_NEAR(shannonEntropyBits(Uniform), 3.0, 1e-9);
  std::vector<uint64_t> Point = {100, 0, 0, 0};
  EXPECT_DOUBLE_EQ(shannonEntropyBits(Point), 0.0);
  std::vector<uint64_t> Half = {50, 50};
  EXPECT_NEAR(shannonEntropyBits(Half), 1.0, 1e-9);
}

namespace {
Statistic TestCounter("test.statistics-counter", "counter used by this test");
} // namespace

TEST(StatisticsTest, StatisticRegistry) {
  Statistic *Found = findStatistic("test.statistics-counter");
  ASSERT_EQ(Found, &TestCounter);
  EXPECT_STREQ(Found->description(), "counter used by this test");

  TestCounter.reset();
  ++TestCounter;
  TestCounter += 4;
  EXPECT_EQ(TestCounter.value(), 5u);

  // The VM decode counters registered themselves too.
  EXPECT_NE(findStatistic("vm.decoded-functions"), nullptr);
  EXPECT_EQ(findStatistic("no.such.counter"), nullptr);

  bool Seen = false;
  for (Statistic *S : allStatistics())
    Seen |= S == &TestCounter;
  EXPECT_TRUE(Seen);
}

TEST(StatisticsTest, ConcurrentIncrementsAreLossless) {
  // The sharded counter's whole contract: N threads hammering the same
  // Statistic lose no increments (value() sums the shards).
  TestCounter.reset();
  constexpr unsigned NumThreads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([] {
      for (uint64_t I = 0; I != PerThread; ++I)
        ++TestCounter;
      TestCounter += 2;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(TestCounter.value(), NumThreads * (PerThread + 2));
  TestCounter.reset();
  EXPECT_EQ(TestCounter.value(), 0u);
}
