//===- tests/vm/BuiltinsTest.cpp - VM builtin function tests -------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "rng/Pseudo.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

/// Module with one function `f` whose body is produced by \p Body. The
/// helper pre-declares the builtins used across these tests.
struct TestProgram {
  Module M{"t"};
  IRBuilder B{M};
  Function *F = nullptr;

  explicit TestProgram(Type *RetTy = nullptr) {
    if (!RetTy)
      RetTy = B.i64();
    F = M.createFunction("f", RetTy, {});
    B.setInsertPoint(F->createBlock("entry"));
  }

  Function *declare(const std::string &Name, Type *Ret,
                    std::vector<Type *> Params, bool VarArg = false) {
    return M.getOrInsertDeclaration(Name, Ret, std::move(Params), VarArg);
  }
};

} // namespace

TEST(BuiltinsTest, MallocMemsetMemcpyStrlen) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Malloc = P.declare("malloc", B.ptr(), {B.i64()});
  Function *Memset = P.declare("memset", B.ptr(), {B.ptr(), B.i32(), B.i64()});
  Function *Memcpy =
      P.declare("memcpy", B.ptr(), {B.ptr(), B.ptr(), B.i64()});
  Function *Strlen = P.declare("strlen", B.i64(), {B.ptr()});

  Value *Buf = B.call(Malloc, {B.constI64(64)});
  B.call(Memset, {Buf, B.constI32('A'), B.constI64(10)});
  Value *Buf2 = B.call(Malloc, {B.constI64(64)});
  B.call(Memcpy, {Buf2, Buf, B.constI64(11)}); // includes the NUL
  B.ret(B.call(Strlen, {Buf2}));

  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 10u);
}

TEST(BuiltinsTest, SnprintfBoundedWriteAndC99Return) {
  // The librelp bug pattern: the return value is the would-be length, not
  // the written length.
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Snprintf = P.declare("snprintf", B.i64(),
                                 {B.ptr(), B.i64(), B.ptr()}, true);
  GlobalVariable *Fmt = P.M.createGlobal(
      "fmt", B.getContext().getArrayTy(B.i8(), 16),
      {'x', '=', '%', 's', '!', 0});
  GlobalVariable *Val = P.M.createGlobal(
      "val", B.getContext().getArrayTy(B.i8(), 16),
      {'0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 0});
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 8), "buf");
  // Would-be output "x=0123456789!" = 13 chars; buffer holds 7 + NUL.
  B.ret(B.call(Snprintf, {Buf, B.constI64(8), Fmt, Val}));

  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 13u) << "C99 return: length that WOULD be written";
}

TEST(BuiltinsTest, SnprintfIntegerDirectives) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Snprintf =
      P.declare("snprintf", B.i64(), {B.ptr(), B.i64(), B.ptr()}, true);
  Function *PrintStr = P.declare("print_str", B.voidTy(), {B.ptr()});
  GlobalVariable *Fmt = P.M.createGlobal(
      "fmt", B.getContext().getArrayTy(B.i8(), 24),
      {'%', 'd', ' ', '%', 'u', ' ', '%', 'x', ' ', '%', 'c', ' ', '%', '%',
       0});
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 64), "buf");
  B.call(Snprintf, {Buf, B.constI64(64), Fmt, B.constI64(-5), B.constI64(7),
                    B.constI64(255), B.constI64('Z')});
  B.call(PrintStr, {Buf});
  B.ret(B.constI64(0));

  Interpreter VM(P.M);
  ASSERT_TRUE(VM.run("f").ok());
  EXPECT_EQ(VM.output(), "-5 7 ff Z %\n");
}

TEST(BuiltinsTest, StrcpyOverflowsIntoNeighbor) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Strcpy = P.declare("strcpy", B.ptr(), {B.ptr(), B.ptr()});
  GlobalVariable *Long = P.M.createGlobal(
      "long", B.getContext().getArrayTy(B.i8(), 32),
      {'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'B', 'B', 'B', 'B', 'B', 'B',
       'B', 'B', 0});
  AllocaInst *Victim = B.alloca_(B.i64(), "victim");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 8), "buf");
  B.store(B.constI64(0), Victim);
  B.call(Strcpy, {Buf, Long}); // 16 chars into 8 bytes
  B.ret(B.load(B.i64(), Victim));

  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0x4242424242424242ULL)
      << "victim (declared first, higher address) takes the 'B' bytes";
}

TEST(BuiltinsTest, SstrncpyNegativeLengthIsUnbounded) {
  // CVE-2006-5815 semantics.
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Sstrncpy =
      P.declare("sstrncpy", B.ptr(), {B.ptr(), B.ptr(), B.i64()});
  std::vector<uint8_t> Init(48, 'C');
  Init.push_back(0);
  GlobalVariable *Long = P.M.createGlobal(
      "long", B.getContext().getArrayTy(B.i8(), 64), Init);
  AllocaInst *Victim = B.alloca_(B.i64(), "victim");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 8), "buf");
  B.store(B.constI64(0), Victim);
  B.call(Sstrncpy, {Buf, Long, B.constI64(static_cast<uint64_t>(-1))});
  B.ret(B.load(B.i64(), Victim));

  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0x4343434343434343ULL);
}

TEST(BuiltinsTest, SstrncpyPositiveLengthIsBounded) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Sstrncpy =
      P.declare("sstrncpy", B.ptr(), {B.ptr(), B.ptr(), B.i64()});
  std::vector<uint8_t> Init(48, 'C');
  Init.push_back(0);
  GlobalVariable *Long =
      P.M.createGlobal("long", B.getContext().getArrayTy(B.i8(), 64), Init);
  AllocaInst *Victim = B.alloca_(B.i64(), "victim");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 8), "buf");
  B.store(B.constI64(0), Victim);
  B.call(Sstrncpy, {Buf, Long, B.constI64(8)});
  B.ret(B.load(B.i64(), Victim));

  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0u) << "bounded copy stays inside buf";
}

TEST(BuiltinsTest, GetInputConsumesQueueUnbounded) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *GetInput = P.declare("get_input", B.i64(), {B.ptr()});
  AllocaInst *Victim = B.alloca_(B.i64(), "victim");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 4), "buf");
  B.store(B.constI64(0), Victim);
  Value *Len = B.call(GetInput, {Buf});
  B.ret(B.add(Len, B.load(B.i64(), Victim)));

  Interpreter VM(P.M);
  // 4-byte buffer, 12-byte record: 8 bytes land on victim.
  std::vector<uint8_t> Record(12, 0x01);
  VM.pushInput(Record);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 12u + 0x0101010101010101ULL);
}

TEST(BuiltinsTest, GetInputNBounded) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *GetInputN = P.declare("get_input_n", B.i64(), {B.ptr(), B.i64()});
  AllocaInst *Victim = B.alloca_(B.i64(), "victim");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 4), "buf");
  B.store(B.constI64(0), Victim);
  Value *Len = B.call(GetInputN, {Buf, B.constI64(4)});
  B.ret(B.add(Len, B.load(B.i64(), Victim)));

  Interpreter VM(P.M);
  VM.pushInput(std::vector<uint8_t>(12, 0x01));
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 4u) << "bounded read leaves victim intact";
}

TEST(BuiltinsTest, GetInputEmptyQueueReturnsZero) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *GetInput = P.declare("get_input", B.i64(), {B.ptr()});
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 4), "buf");
  B.ret(B.call(GetInput, {Buf}));
  Interpreter VM(P.M);
  EXPECT_EQ(VM.run("f").ReturnValue, 0u);
}

TEST(BuiltinsTest, SmokestackRandUsesBoundSource) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Rand = P.declare("smokestack.rand", B.i64(), {});
  B.ret(B.call(Rand, {}));

  DeterministicEntropySource Entropy(5);
  PseudoRandomSource Rng(Entropy);
  uint64_t StateCopy[2];
  {
    auto State = Rng.disclosableState();
    memcpy(StateCopy, State.data(), State.size());
  }
  Interpreter VM(P.M, &Rng);
  EXPECT_EQ(VM.run("f").ReturnValue, PseudoRandomSource::stepState(StateCopy));
}

TEST(BuiltinsTest, SmokestackRandWithoutSourceTraps) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Rand = P.declare("smokestack.rand", B.i64(), {});
  B.ret(B.call(Rand, {}));
  Interpreter VM(P.M);
  EXPECT_EQ(VM.run("f").Trap, TrapKind::BadCall);
}

TEST(BuiltinsTest, SmokestackTrapCodes) {
  for (auto [Code, Kind] :
       {std::pair<uint64_t, TrapKind>{1, TrapKind::FunctionIdViolation},
        {2, TrapKind::CanaryViolation},
        {9, TrapKind::ExplicitTrap}}) {
    TestProgram P(nullptr);
    IRBuilder &B = P.B;
    Function *Trap = P.declare("smokestack.trap", B.voidTy(), {B.i64()});
    B.call(Trap, {B.constI64(Code)});
    B.ret(B.constI64(0));
    Interpreter VM(P.M);
    EXPECT_EQ(VM.run("f").Trap, Kind);
  }
}

TEST(BuiltinsTest, PrintBuiltinsAccumulateOutput) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *PrintI64 = P.declare("print_i64", B.voidTy(), {B.i64()});
  B.call(PrintI64, {B.constI64(static_cast<uint64_t>(-3))});
  B.call(PrintI64, {B.constI64(99)});
  B.ret(B.constI64(0));
  Interpreter VM(P.M);
  ASSERT_TRUE(VM.run("f").ok());
  EXPECT_EQ(VM.output(), "-3\n99\n");
}

TEST(BuiltinsTest, UnknownBuiltinTraps) {
  TestProgram P;
  IRBuilder &B = P.B;
  Function *Mystery = P.declare("mystery", B.i64(), {});
  B.ret(B.call(Mystery, {}));
  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  EXPECT_EQ(R.Trap, TrapKind::BadCall);
  EXPECT_NE(R.Message.find("mystery"), std::string::npos);
}
