//===- tests/vm/DecodedDifferentialTest.cpp - Engine differential tests ----===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of the pre-decoded execution engine against the
/// tree-walking oracle. Both engines must produce bit-identical ExecResults
/// — trap kind, return value, and step count — plus identical builtin
/// output and call counts, across:
///
///  - every shipped examples/*.ir module (plain and Smokestack-hardened),
///  - the randomized DifferentialFuzzTest program corpus,
///  - handcrafted trap scenarios covering every trap kind the engines can
///    raise, including the VLA size-overflow fix.
///
//===----------------------------------------------------------------------===//

#include "common/RandomProgramGen.h"
#include "core/SmokestackPass.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "rng/AesCtr.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace smokestack;

namespace {

/// Runs \p FuncName through both engines on \p M and asserts result parity.
/// Each engine gets its own interpreter (decode caches are per-instance)
/// and, when \p Seed is nonzero, its own identically-seeded AES-10 source
/// so hardened modules draw identical layout streams.
void expectEngineParity(Module &M, const std::string &FuncName,
                        uint64_t Seed = 0,
                        InterpreterOptions BaseOpts = InterpreterOptions()) {
  InterpreterOptions TreeOpts = BaseOpts;
  TreeOpts.UseDecodedEngine = false;
  InterpreterOptions DecodedOpts = BaseOpts;
  DecodedOpts.UseDecodedEngine = true;

  DeterministicEntropySource TreeEntropy(Seed), DecodedEntropy(Seed);
  AesCtrRandomSource TreeRng(TreeEntropy, 10), DecodedRng(DecodedEntropy, 10);

  Interpreter TreeVM(M, Seed ? &TreeRng : nullptr, TreeOpts);
  Interpreter DecodedVM(M, Seed ? &DecodedRng : nullptr, DecodedOpts);

  ExecResult TreeR = TreeVM.run(FuncName);
  ExecResult DecodedR = DecodedVM.run(FuncName);

  EXPECT_EQ(TreeR.Trap, DecodedR.Trap)
      << FuncName << ": tree-walk trapped with '" << trapKindName(TreeR.Trap)
      << "' (" << TreeR.Message << "), decoded with '"
      << trapKindName(DecodedR.Trap) << "' (" << DecodedR.Message << ")";
  EXPECT_EQ(TreeR.ReturnValue, DecodedR.ReturnValue) << FuncName;
  EXPECT_EQ(TreeR.Steps, DecodedR.Steps) << FuncName;
  EXPECT_EQ(TreeVM.callsExecuted(), DecodedVM.callsExecuted()) << FuncName;
  EXPECT_EQ(TreeVM.output(), DecodedVM.output()) << FuncName;
}

std::vector<std::filesystem::path> exampleModules() {
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SMOKESTACK_EXAMPLES_DIR))
    if (Entry.path().extension() == ".ir")
      Paths.push_back(Entry.path());
  return Paths;
}

ParseResult parseFile(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseModule(Buf.str(), Path.filename().string());
}

} // namespace

TEST(DecodedDifferentialTest, ExampleModulesMatchPlain) {
  std::vector<std::filesystem::path> Paths = exampleModules();
  ASSERT_FALSE(Paths.empty()) << "no examples/*.ir modules found";
  unsigned FunctionsRun = 0;
  for (const auto &Path : Paths) {
    ParseResult Parsed = parseFile(Path);
    ASSERT_TRUE(Parsed.ok()) << Path << ": " << Parsed.Error;
    Module &M = *Parsed.M;
    for (size_t I = 0, E = M.getNumFunctions(); I != E; ++I) {
      Function *F = M.getFunctionAt(I);
      if (F->isDeclaration() || F->getNumArgs() != 0)
        continue;
      expectEngineParity(M, F->getName());
      ++FunctionsRun;
    }
  }
  EXPECT_GT(FunctionsRun, 0u) << "no zero-argument definitions exercised";
}

TEST(DecodedDifferentialTest, ExampleModulesMatchHardened) {
  for (const auto &Path : exampleModules()) {
    ParseResult Parsed = parseFile(Path);
    ASSERT_TRUE(Parsed.ok()) << Path << ": " << Parsed.Error;
    Module &M = *Parsed.M;
    PassManager PM;
    PM.addPass(std::make_unique<SmokestackPass>());
    PM.run(M);
    ASSERT_TRUE(verifyModule(M));
    for (size_t I = 0, E = M.getNumFunctions(); I != E; ++I) {
      Function *F = M.getFunctionAt(I);
      if (F->isDeclaration() || F->getNumArgs() != 0)
        continue;
      expectEngineParity(M, F->getName(), /*Seed=*/0xD1FF);
    }
  }
}

// The randomized corpus of the instrumentation fuzzer, replayed across
// engines: plain modules and Smokestack-hardened modules with pinned
// randomness.
class DecodedDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecodedDifferentialFuzz, CorpusMatches) {
  uint64_t Seed = GetParam();
  Module Plain("plain");
  buildRandomProgram(Plain, Seed);
  ASSERT_TRUE(verifyModule(Plain));
  expectEngineParity(Plain, "main");

  Module Hard("hard");
  buildRandomProgram(Hard, Seed);
  PassManager PM;
  PM.addPass(std::make_unique<SmokestackPass>());
  PM.run(Hard);
  ASSERT_TRUE(verifyModule(Hard));
  expectEngineParity(Hard, "main", /*Seed=*/Seed ^ 0xF022);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodedDifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 41));

TEST(DecodedDifferentialTest, DivisionByZeroParity) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Zero = B.alloca_(B.i64(), "z");
  B.store(B.constI64(0), Zero);
  B.ret(B.udiv(B.constI64(7), B.load(B.i64(), Zero)));
  expectEngineParity(M, "main");
}

TEST(DecodedDifferentialTest, UnmappedAccessParity) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Value *Bad = B.cast_(CastInst::CastOp::IntToPtr, B.ptr(), B.constI64(64));
  B.ret(B.load(B.i64(), Bad));
  expectEngineParity(M, "main");
}

TEST(DecodedDifferentialTest, OutOfFuelParity) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Loop = F->createBlock("loop");
  B.setInsertPoint(Entry);
  B.br(Loop);
  B.setInsertPoint(Loop);
  B.br(Loop);
  InterpreterOptions Opts;
  Opts.Fuel = 100;
  expectEngineParity(M, "main", /*Seed=*/0, Opts);
}

TEST(DecodedDifferentialTest, VlaSizeOverflowTrapsInBothEngines) {
  // 2^62 elements of 8 bytes overflows the 64-bit byte count; both engines
  // must trap StackOverflow instead of wrapping to a tiny allocation.
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *CountSlot = B.alloca_(B.i64(), "n");
  B.store(B.constI64(uint64_t(1) << 62), CountSlot);
  AllocaInst *VLA =
      B.allocaVLA(B.i64(), B.load(B.i64(), CountSlot), "vla");
  B.store(B.constI64(1), VLA);
  B.ret(B.constI64(0));
  expectEngineParity(M, "main");

  InterpreterOptions Opts;
  Opts.UseDecodedEngine = true;
  Interpreter VM(M, nullptr, Opts);
  EXPECT_EQ(VM.run("main").Trap, TrapKind::StackOverflow);
}

TEST(DecodedDifferentialTest, UnreachableParity) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.unreachable_();
  expectEngineParity(M, "main");
}

TEST(DecodedDifferentialTest, CallDepthLimitParity) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.call(F, {}, "again"));
  expectEngineParity(M, "main");
}

TEST(DecodedDifferentialTest, UnknownBuiltinParity) {
  Module M("t");
  IRBuilder B(M);
  Function *Mystery = M.getOrInsertDeclaration("no.such.builtin", B.i64(), {});
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.call(Mystery, {}));
  expectEngineParity(M, "main");
}

TEST(DecodedDifferentialTest, BuiltinsAndInputParity) {
  // print/strlen/get_input flow through dispatchBuiltin identically; this
  // pins output and input-queue consumption across engines.
  Module M("t");
  IRBuilder B(M);
  Function *GetInput =
      M.getOrInsertDeclaration("get_input", B.i64(), {B.ptr(), B.i64()});
  Function *Print = M.getOrInsertDeclaration("print_i64", B.voidTy(), {B.i64()});
  Function *F = M.createFunction("main", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  Value *Got = B.call(GetInput, {Buf, B.constI64(16)});
  B.call(Print, {Got});
  B.ret(B.add(Got, B.load(B.i64(), Buf)));

  InterpreterOptions TreeOpts, DecodedOpts;
  TreeOpts.UseDecodedEngine = false;
  Interpreter TreeVM(M, nullptr, TreeOpts), DecodedVM(M, nullptr, DecodedOpts);
  TreeVM.pushInputString("hello");
  DecodedVM.pushInputString("hello");
  ExecResult TreeR = TreeVM.run("main"), DecodedR = DecodedVM.run("main");
  EXPECT_EQ(TreeR.Trap, DecodedR.Trap);
  EXPECT_EQ(TreeR.ReturnValue, DecodedR.ReturnValue);
  EXPECT_EQ(TreeR.Steps, DecodedR.Steps);
  EXPECT_EQ(TreeVM.output(), DecodedVM.output());
}

TEST(DecodedDifferentialTest, RepeatedRunsReuseDecodeCache) {
  // Second run of the same function must reuse the cached decode and still
  // agree with a fresh tree-walk (guards cache-invalidation bugs).
  Module M("t");
  IRBuilder B(M);
  buildRandomProgram(M, 7);
  InterpreterOptions DecodedOpts;
  Interpreter DecodedVM(M, nullptr, DecodedOpts);
  ExecResult First = DecodedVM.run("main");
  ExecResult Second = DecodedVM.run("main");
  EXPECT_EQ(First.Trap, Second.Trap);
  EXPECT_EQ(First.ReturnValue, Second.ReturnValue);
  EXPECT_EQ(First.Steps, Second.Steps);
}
