//===- tests/vm/InterpreterEdgeTest.cpp - VM edge-case tests -------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

struct Prog {
  Module M{"t"};
  IRBuilder B{M};
  Function *F = nullptr;

  explicit Prog(Type *RetTy = nullptr) {
    F = M.createFunction("f", RetTy ? RetTy : B.i64(), {});
    B.setInsertPoint(F->createBlock("entry"));
  }
};

} // namespace

TEST(InterpreterEdgeTest, FloatComparisons) {
  for (auto [Pred, A, Bv, Want] :
       {std::tuple<ICmpInst::Predicate, double, double, uint64_t>{
            ICmpInst::Predicate::OLT, 1.0, 2.0, 1},
        {ICmpInst::Predicate::OLT, 2.0, 1.0, 0},
        {ICmpInst::Predicate::OEQ, 3.5, 3.5, 1},
        {ICmpInst::Predicate::OGE, 3.5, 3.5, 1},
        {ICmpInst::Predicate::OGT, 3.5, 3.5, 0},
        {ICmpInst::Predicate::OLE, -1.0, 0.0, 1}}) {
    Prog P;
    IRBuilder &B = P.B;
    Value *Cmp = B.icmp(Pred, B.constF64(A), B.constF64(Bv));
    P.B.ret(B.zext(B.i64(), Cmp));
    Interpreter VM(P.M);
    EXPECT_EQ(VM.run("f").ReturnValue, Want);
  }
}

TEST(InterpreterEdgeTest, FloatNarrowingRoundTrip) {
  // double -> float -> double loses precision deterministically.
  Prog P;
  IRBuilder &B = P.B;
  Value *Narrow = B.cast_(CastInst::CastOp::FPTrunc, B.f32(),
                          B.constF64(1.0000001));
  Value *Wide = B.cast_(CastInst::CastOp::FPExt, B.f64(), Narrow);
  Value *Scaled = B.binop(BinaryInst::BinOp::FMul, Wide,
                          B.constF64(10000000.0));
  P.B.ret(B.cast_(CastInst::CastOp::FPToSI, B.i64(), Scaled));
  Interpreter VM(P.M);
  uint64_t V = VM.run("f").ReturnValue;
  EXPECT_NEAR(static_cast<double>(V), 10000001.0, 2.0);
}

TEST(InterpreterEdgeTest, SignedDivisionEdge) {
  // INT64_MIN / -1 wraps rather than trapping (matches x86 behavior is a
  // trap, but the simulator defines wrapping; the point is determinism).
  Prog P;
  IRBuilder &B = P.B;
  Value *MinVal = B.constI64(0x8000000000000000ULL);
  P.B.ret(B.sdiv(MinVal, B.constI64(static_cast<uint64_t>(-1))));
  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 0x8000000000000000ULL);
}

TEST(InterpreterEdgeTest, ShiftBeyondWidth) {
  Prog P;
  IRBuilder &B = P.B;
  Value *Over = B.shl(B.constI64(1), B.constI64(64));
  Value *Ashr = B.binop(BinaryInst::BinOp::AShr,
                        B.constI64(static_cast<uint64_t>(-8)),
                        B.constI64(100));
  P.B.ret(B.add(Over, Ashr));
  Interpreter VM(P.M);
  // shl by >= width -> 0; ashr of negative by >= width -> -1.
  EXPECT_EQ(static_cast<int64_t>(VM.run("f").ReturnValue), -1);
}

TEST(InterpreterEdgeTest, GepWithIndexAndScale) {
  Prog P;
  IRBuilder &B = P.B;
  AllocaInst *Arr = B.alloca_(B.getContext().getArrayTy(B.i32(), 8), "arr");
  for (int I = 0; I != 8; ++I)
    B.store(B.constI32(10 * I), B.gepConst(Arr, 4 * I));
  Value *Idx = B.constI64(5);
  Value *Slot = B.gep(Arr, Idx, 4, 0, "slot");
  P.B.ret(B.zext(B.i64(), B.load(B.i32(), Slot)));
  Interpreter VM(P.M);
  EXPECT_EQ(VM.run("f").ReturnValue, 50u);
}

TEST(InterpreterEdgeTest, NegativeGepOffset) {
  Prog P;
  IRBuilder &B = P.B;
  AllocaInst *A = B.alloca_(B.i64(), "a");
  AllocaInst *Bv = B.alloca_(B.i64(), "b"); // directly below a
  B.store(B.constI64(77), A);
  B.store(B.constI64(0), Bv);
  Value *Back = B.gepConst(Bv, 8, "back"); // b + 8 == a
  P.B.ret(B.load(B.i64(), Back));
  Interpreter VM(P.M);
  EXPECT_EQ(VM.run("f").ReturnValue, 77u);
}

TEST(InterpreterEdgeTest, SnprintfExactFit) {
  Prog P;
  IRBuilder &B = P.B;
  Function *Snprintf = P.M.getOrInsertDeclaration(
      "snprintf", B.i64(), {B.ptr(), B.i64(), B.ptr()}, true);
  Function *Strlen = P.M.getOrInsertDeclaration("strlen", B.i64(), {B.ptr()});
  GlobalVariable *Fmt = P.M.createGlobal(
      "fmt", B.getContext().getArrayTy(B.i8(), 8), {'%', 'd', 0});
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 4), "buf");
  // "123" needs exactly 3 chars + NUL = size 4: fits exactly.
  Value *R = B.call(Snprintf, {Buf, B.constI64(4), Fmt, B.constI64(123)});
  Value *Len = B.call(Strlen, {Buf});
  P.B.ret(B.add(B.mul(R, B.constI64(100)), Len));
  Interpreter VM(P.M);
  EXPECT_EQ(VM.run("f").ReturnValue, 3u * 100 + 3);
}

TEST(InterpreterEdgeTest, SnprintfZeroSizeWritesNothing) {
  Prog P;
  IRBuilder &B = P.B;
  Function *Snprintf = P.M.getOrInsertDeclaration(
      "snprintf", B.i64(), {B.ptr(), B.i64(), B.ptr()}, true);
  GlobalVariable *Fmt = P.M.createGlobal(
      "fmt", B.getContext().getArrayTy(B.i8(), 8), {'h', 'i', 0});
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 4), "buf");
  B.store(B.constI8(0x55), Buf);
  Value *R = B.call(Snprintf, {Buf, B.constI64(0), Fmt});
  Value *First = B.zext(B.i64(), B.load(B.i8(), Buf));
  P.B.ret(B.add(B.mul(R, B.constI64(1000)), First));
  Interpreter VM(P.M);
  // Returns would-be length 2; buffer untouched (0x55 = 85).
  EXPECT_EQ(VM.run("f").ReturnValue, 2u * 1000 + 0x55);
}

TEST(InterpreterEdgeTest, SnprintfMissingArgumentTraps) {
  Prog P;
  IRBuilder &B = P.B;
  Function *Snprintf = P.M.getOrInsertDeclaration(
      "snprintf", B.i64(), {B.ptr(), B.i64(), B.ptr()}, true);
  GlobalVariable *Fmt = P.M.createGlobal(
      "fmt", B.getContext().getArrayTy(B.i8(), 8), {'%', 'd', 0});
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  P.B.ret(B.call(Snprintf, {Buf, B.constI64(16), Fmt})); // no %d argument
  Interpreter VM(P.M);
  EXPECT_EQ(VM.run("f").Trap, TrapKind::BadCall);
}

TEST(InterpreterEdgeTest, StrcpyFromUnmappedTraps) {
  Prog P;
  IRBuilder &B = P.B;
  Function *Strcpy =
      P.M.getOrInsertDeclaration("strcpy", B.ptr(), {B.ptr(), B.ptr()});
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 8), "buf");
  Value *Bad = B.cast_(CastInst::CastOp::IntToPtr, B.ptr(), B.constI64(64));
  B.call(Strcpy, {Buf, Bad});
  P.B.ret(B.constI64(0));
  Interpreter VM(P.M);
  EXPECT_EQ(VM.run("f").Trap, TrapKind::UnmappedAccess);
}

TEST(InterpreterEdgeTest, ArgumentsArePassedByValue) {
  // Callee mutations of its (spilled) parameter must not affect the caller.
  Module M("t");
  IRBuilder B(M);
  Function *Callee = M.createFunction("callee", B.i64(), {B.i64()});
  {
    IRBuilder CB(M);
    CB.setInsertPoint(Callee->createBlock("entry"));
    AllocaInst *P = CB.alloca_(CB.i64(), "p");
    CB.store(Callee->getArg(0), P);
    CB.store(CB.add(CB.load(CB.i64(), P), CB.constI64(100)), P);
    CB.ret(CB.load(CB.i64(), P));
  }
  Function *F = M.createFunction("f", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *X = B.alloca_(B.i64(), "x");
  B.store(B.constI64(5), X);
  Value *R = B.call(Callee, {B.load(B.i64(), X)});
  B.ret(B.add(R, B.load(B.i64(), X)));
  Interpreter VM(M);
  EXPECT_EQ(VM.run("f").ReturnValue, 105u + 5u);
}

TEST(InterpreterEdgeTest, FuelAccountingInSteps) {
  Prog P;
  IRBuilder &B = P.B;
  P.B.ret(B.add(B.constI64(1), B.constI64(2)));
  Interpreter VM(P.M);
  ExecResult R = VM.run("f");
  EXPECT_EQ(R.Steps, 2u) << "one add, one ret";
}

TEST(InterpreterEdgeTest, OutputPersistsAcrossRunsUntilCleared) {
  Prog P;
  IRBuilder &B = P.B;
  Function *Print = P.M.getOrInsertDeclaration("print_i64", B.voidTy(),
                                               {B.i64()});
  B.call(Print, {B.constI64(1)});
  P.B.ret(B.constI64(0));
  Interpreter VM(P.M);
  VM.run("f");
  VM.run("f");
  EXPECT_EQ(VM.output(), "1\n1\n");
  VM.clearOutput();
  EXPECT_TRUE(VM.output().empty());
}
