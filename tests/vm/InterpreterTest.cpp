//===- tests/vm/InterpreterTest.cpp - Interpreter tests ------------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>
#include <map>

using namespace smokestack;

namespace {

/// i64 sumTo(i64 n): alloca-based loop summing 0..n-1.
void buildSumTo(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("sumTo", B.i64(), {B.i64()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Cond = F->createBlock("cond");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  AllocaInst *S = B.alloca_(B.i64(), "s");
  AllocaInst *I = B.alloca_(B.i64(), "i");
  B.store(B.constI64(0), S);
  B.store(B.constI64(0), I);
  B.br(Cond);
  B.setInsertPoint(Cond);
  Value *IV = B.load(B.i64(), I);
  B.condBr(B.icmp(ICmpInst::Predicate::SLT, IV, F->getArg(0)), Body, Exit);
  B.setInsertPoint(Body);
  B.store(B.add(B.load(B.i64(), S), B.load(B.i64(), I)), S);
  B.store(B.add(B.load(B.i64(), I), B.constI64(1)), I);
  B.br(Cond);
  B.setInsertPoint(Exit);
  B.ret(B.load(B.i64(), S));
}

/// i64 fib(i64 n): naive recursion, exercises call/return and frame reuse.
void buildFib(Module &M) {
  IRBuilder B(M);
  Function *F = M.createFunction("fib", B.i64(), {B.i64()});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Base = F->createBlock("base");
  BasicBlock *Rec = F->createBlock("rec");
  B.setInsertPoint(Entry);
  B.condBr(B.icmp(ICmpInst::Predicate::SLT, F->getArg(0), B.constI64(2)),
           Base, Rec);
  B.setInsertPoint(Base);
  B.ret(F->getArg(0));
  B.setInsertPoint(Rec);
  Value *A = B.call(F, {B.sub(F->getArg(0), B.constI64(1))});
  Value *C = B.call(F, {B.sub(F->getArg(0), B.constI64(2))});
  B.ret(B.add(A, C));
}

/// Records every alloca placement.
class RecordingObserver : public LayoutObserver {
public:
  struct Placement {
    std::string Func;
    std::string Var;
    uint64_t Addr;
    uint64_t Size;
  };
  std::vector<Placement> Placements;

  void onAlloca(const Function &F, const AllocaInst &Alloca, uint64_t Addr,
                uint64_t Size) override {
    Placements.push_back({F.getName(), Alloca.getName(), Addr, Size});
  }
};

} // namespace

TEST(InterpreterTest, LoopArithmetic) {
  Module M("t");
  buildSumTo(M);
  ASSERT_TRUE(verifyModule(M));
  Interpreter VM(M);
  ExecResult R = VM.run("sumTo", {10});
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 45u);
}

TEST(InterpreterTest, RecursionAndFrameTeardown) {
  Module M("t");
  buildFib(M);
  Interpreter VM(M);
  ExecResult R = VM.run("fib", {15});
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 610u);
}

TEST(InterpreterTest, NarrowIntegerSemantics) {
  // i8 arithmetic wraps at 256; signed compare sees 0xFF as -1.
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("narrow", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Value *A = B.add(B.constI8(200), B.constI8(100)); // 300 & 0xff = 44
  Value *IsNeg = B.icmp(ICmpInst::Predicate::SLT, B.constI8(0xFF),
                        B.constI8(0)); // -1 < 0 -> 1
  Value *Wide = B.zext(B.i64(), A);
  Value *NegWide = B.zext(B.i64(), IsNeg);
  B.ret(B.add(Wide, B.mul(NegWide, B.constI64(1000))));
  Interpreter VM(M);
  ExecResult R = VM.run("narrow");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 1044u);
}

TEST(InterpreterTest, SextTruncRoundTrip) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("sext", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Value *Neg = B.trunc(B.i8(), B.constI64(0xF0)); // -16 as i8
  B.ret(B.sext(B.i64(), Neg));
  Interpreter VM(M);
  EXPECT_EQ(static_cast<int64_t>(VM.run("sext").ReturnValue), -16);
}

TEST(InterpreterTest, FloatingPointOps) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("fp", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Value *X = B.binop(BinaryInst::BinOp::FMul, B.constF64(2.5),
                     B.constF64(4.0)); // 10.0
  Value *Y = B.binop(BinaryInst::BinOp::FAdd, X, B.constF64(0.5)); // 10.5
  B.ret(B.cast_(CastInst::CastOp::FPToSI, B.i64(), Y));
  Interpreter VM(M);
  EXPECT_EQ(VM.run("fp").ReturnValue, 10u);
}

TEST(InterpreterTest, GlobalsAreLoadedAndAddressable) {
  Module M("t");
  IRBuilder B(M);
  GlobalVariable *G =
      M.createGlobal("counter", B.i64(), {42, 0, 0, 0, 0, 0, 0, 0});
  Function *F = M.createFunction("bump", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  Value *Old = B.load(B.i64(), G);
  B.store(B.add(Old, B.constI64(1)), G);
  B.ret(B.load(B.i64(), G));
  Interpreter VM(M);
  EXPECT_EQ(VM.run("bump").ReturnValue, 43u);
  EXPECT_EQ(VM.run("bump").ReturnValue, 44u)
      << "globals persist across runs of one VM instance";
  EXPECT_NE(VM.getGlobalAddress("counter"), 0u);
}

TEST(InterpreterTest, ReadOnlyGlobalTrapsOnStore) {
  Module M("t");
  IRBuilder B(M);
  GlobalVariable *G = M.createGlobal("table", B.i64(), {1}, /*ReadOnly=*/true);
  Function *F = M.createFunction("smash", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.store(B.constI64(0), G);
  B.ret();
  Interpreter VM(M);
  ExecResult R = VM.run("smash");
  EXPECT_EQ(R.Trap, TrapKind::ReadOnlyViolation);
}

TEST(InterpreterTest, AllocasStackDownwardInDeclarationOrder) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.alloca_(B.i64(), "first");
  B.alloca_(B.getContext().getArrayTy(B.i8(), 64), "buf");
  B.alloca_(B.i32(), "last");
  B.ret();
  RecordingObserver Obs;
  Interpreter VM(M);
  VM.setLayoutObserver(&Obs);
  ASSERT_TRUE(VM.run("f").ok());
  ASSERT_EQ(Obs.Placements.size(), 3u);
  EXPECT_GT(Obs.Placements[0].Addr, Obs.Placements[1].Addr)
      << "earlier allocas sit higher (x86-style downward growth)";
  EXPECT_GT(Obs.Placements[1].Addr, Obs.Placements[2].Addr);
  EXPECT_EQ(Obs.Placements[1].Size, 64u);
}

TEST(InterpreterTest, BufferOverflowReachesEarlierLocal) {
  // victim is declared before buf, so it lives at a higher address; writing
  // past buf's end corrupts victim. This is the determinism Smokestack
  // destroys.
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *Victim = B.alloca_(B.i64(), "victim");
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 16), "buf");
  B.store(B.constI64(7), Victim);
  // Write 8 bytes at buf+16 — one past the end, exactly onto victim.
  GepInst *Past = B.gepConst(Buf, 16);
  B.store(B.constI64(0x4141414141414141ULL), Past);
  B.ret(B.load(B.i64(), Victim));
  Interpreter VM(M);
  ExecResult R = VM.run("f");
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0x4141414141414141ULL);
}

TEST(InterpreterTest, VLAAllocaUsesDynamicCount) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.i64(), {B.i64()});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *VLA = B.allocaVLA(B.i8(), F->getArg(0), "vla");
  AllocaInst *After = B.alloca_(B.i64(), "after");
  Value *VlaInt = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), VLA);
  Value *AfterInt = B.cast_(CastInst::CastOp::PtrToInt, B.i64(), After);
  B.ret(B.sub(VlaInt, AfterInt));
  Interpreter VM(M);
  // Gap between the VLA base and the next alloca >= requested VLA size.
  EXPECT_GE(VM.run("f", {100}).ReturnValue, 8u);
  EXPECT_GE(VM.run("f", {1000}).ReturnValue, 8u);
}

TEST(InterpreterTest, DivisionByZeroTraps) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.i64(), {B.i64()});
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.udiv(B.constI64(1), F->getArg(0)));
  Interpreter VM(M);
  EXPECT_EQ(VM.run("f", {0}).Trap, TrapKind::DivisionByZero);
  EXPECT_TRUE(VM.run("f", {2}).ok());
}

TEST(InterpreterTest, OutOfFuel) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("spin", B.voidTy(), {});
  BasicBlock *Entry = F->createBlock("entry");
  B.setInsertPoint(Entry);
  B.br(Entry);
  InterpreterOptions Opts;
  Opts.Fuel = 1000;
  Interpreter VM(M, nullptr, Opts);
  EXPECT_EQ(VM.run("spin").Trap, TrapKind::OutOfFuel);
}

TEST(InterpreterTest, CallDepthLimit) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("inf", B.voidTy(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.call(F, {});
  B.ret();
  InterpreterOptions Opts;
  Opts.MaxCallDepth = 64;
  Interpreter VM(M, nullptr, Opts);
  EXPECT_EQ(VM.run("inf").Trap, TrapKind::StackOverflow);
}

TEST(InterpreterTest, StackBaseOffsetShiftsFrameAddresses) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("f", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  AllocaInst *X = B.alloca_(B.i64(), "x");
  B.ret(B.cast_(CastInst::CastOp::PtrToInt, B.i64(), X));
  uint64_t Plain, Shifted;
  {
    Interpreter VM(M);
    Plain = VM.run("f").ReturnValue;
  }
  {
    InterpreterOptions Opts;
    Opts.StackBaseOffset = 4096;
    Interpreter VM(M, nullptr, Opts);
    Shifted = VM.run("f").ReturnValue;
  }
  EXPECT_EQ(Plain - Shifted, 4096u);
}

TEST(InterpreterTest, SelectInstruction) {
  Module M("t");
  IRBuilder B(M);
  Function *F = M.createFunction("max", B.i64(), {B.i64(), B.i64()});
  B.setInsertPoint(F->createBlock("entry"));
  Value *Cmp = B.icmp(ICmpInst::Predicate::SGT, F->getArg(0), F->getArg(1));
  B.ret(B.select(Cmp, F->getArg(0), F->getArg(1)));
  Interpreter VM(M);
  EXPECT_EQ(VM.run("max", {3, 9}).ReturnValue, 9u);
  EXPECT_EQ(VM.run("max", {12, 9}).ReturnValue, 12u);
}

TEST(InterpreterTest, CallCounting) {
  Module M("t");
  buildFib(M);
  Interpreter VM(M);
  VM.run("fib", {10});
  // fib(10) makes 177 calls total (T(n) = T(n-1)+T(n-2)+1, T(0)=T(1)=1).
  EXPECT_EQ(VM.callsExecuted(), 177u);
}

TEST(InterpreterTest, UnknownFunctionIsBadCall) {
  Module M("t");
  Interpreter VM(M);
  EXPECT_EQ(VM.run("missing").Trap, TrapKind::BadCall);
}
