//===- tests/vm/RequestBoundaryTest.cpp - runRequest() boundary tests -----===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The recoverable-trap boundary: runRequest() must confine a trap to one
// request — scrub the touched stack, drop queued input, reset the heap
// arena, clear the trap — and keep the same Interpreter serving. Includes
// the fail-closed randomness path: a RandomnessFailure trap from
// smokestack.rand is recoverable, and swapping a healthy source back in
// resumes clean service.
//
//===----------------------------------------------------------------------===//

#include "attacks/Attacker.h"
#include "ir/IRBuilder.h"
#include "rng/Entropy.h"
#include "rng/Pseudo.h"
#include "vm/Interpreter.h"

#include "gtest/gtest.h"

using namespace smokestack;

namespace {

/// RandomSource test double that always fails closed.
class DeadSource : public RandomSource {
public:
  uint64_t next() override {
    setDrawStatus(DrawStatus::Failed);
    return 0;
  }
  const char *name() const override { return "dead"; }
  SecurityLevel securityLevel() const override { return SecurityLevel::High; }
};

/// driver(fail): stores a sentinel into a local buffer, then either traps
/// (fail != 0) or returns 7.
void buildTrappingModule(Module &M) {
  IRBuilder B(M);
  Function *Trap =
      M.getOrInsertDeclaration("smokestack.trap", B.voidTy(), {B.i64()});
  Function *Driver = M.createFunction("driver", B.i64(), {B.i64()});
  BasicBlock *Entry = Driver->createBlock("entry");
  BasicBlock *Boom = Driver->createBlock("boom");
  BasicBlock *Fine = Driver->createBlock("fine");

  B.setInsertPoint(Entry);
  AllocaInst *Buf = B.alloca_(B.getContext().getArrayTy(B.i8(), 64), "buf");
  B.store(B.constI64(0x5EC7E7), Buf);
  B.condBr(B.icmp(ICmpInst::Predicate::NE, Driver->getArg(0), B.constI64(0)),
           Boom, Fine);
  B.setInsertPoint(Boom);
  B.call(Trap, {B.constI64(0)});
  B.ret(B.constI64(0));
  B.setInsertPoint(Fine);
  B.ret(B.constI64(7));
}

TEST(RequestBoundaryTest, TrapIsConfinedAndStackIsScrubbed) {
  Module M("boundary");
  buildTrappingModule(M);
  LayoutOracle Oracle;
  Interpreter VM(M);
  VM.setLayoutObserver(&Oracle);

  // Clean request: the sentinel stays behind on the (unscrubbed) stack.
  ExecResult Clean = VM.runRequest("driver", {0});
  ASSERT_TRUE(Clean.ok());
  EXPECT_EQ(Clean.ReturnValue, 7u);
  ASSERT_TRUE(Oracle.knows("driver", "buf"));
  uint64_t BufAddr = Oracle.addressOf("driver", "buf");
  uint64_t Word = 0;
  ASSERT_TRUE(VM.memory().loadInt(BufAddr, 8, Word));
  EXPECT_EQ(Word, 0x5EC7E7u) << "clean exits do not scrub";

  // Trapping request: same entry point, same frame placement (no
  // randomization deployed), but this time the request traps.
  ExecResult Bad = VM.runRequest("driver", {1});
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.Trap, TrapKind::ExplicitTrap);
  ASSERT_TRUE(VM.memory().loadInt(BufAddr, 8, Word));
  EXPECT_EQ(Word, 0u) << "post-trap recovery must scrub the touched stack";
  EXPECT_EQ(VM.memory().getTrap(), TrapKind::None)
      << "the memory trap state must be cleared at the boundary";

  // The same Interpreter keeps serving.
  ExecResult Again = VM.runRequest("driver", {0});
  EXPECT_TRUE(Again.ok());
  EXPECT_EQ(Again.ReturnValue, 7u);

  EXPECT_EQ(VM.requestsServed(), 3u);
  EXPECT_EQ(VM.requestTraps(), 1u);
  EXPECT_EQ(VM.requestRecoveries(), 1u);
}

TEST(RequestBoundaryTest, QueuedInputIsDroppedOnTrap) {
  Module M("inputs");
  IRBuilder B(M);
  Function *Remaining =
      M.getOrInsertDeclaration("input_remaining", B.i64(), {});
  Function *Trap =
      M.getOrInsertDeclaration("smokestack.trap", B.voidTy(), {B.i64()});
  {
    Function *F = M.createFunction("boom", B.i64(), {});
    IRBuilder FB(M);
    FB.setInsertPoint(F->createBlock("entry"));
    FB.call(Trap, {FB.constI64(0)});
    FB.ret(FB.constI64(0));
  }
  {
    Function *F = M.createFunction("count", B.i64(), {});
    IRBuilder FB(M);
    FB.setInsertPoint(F->createBlock("entry"));
    FB.ret(FB.call(Remaining, {}));
  }

  Interpreter VM(M);
  VM.pushInputString("record-1");
  VM.pushInputString("record-2");
  EXPECT_FALSE(VM.runRequest("boom").ok());
  // A trapped request must not leak its pending records into the next one
  // (stale attacker payloads would otherwise be replayed cross-request).
  ExecResult R = VM.runRequest("count");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 0u);
}

TEST(RequestBoundaryTest, HeapActsAsPerRequestArena) {
  Module M("heap");
  IRBuilder B(M);
  Function *Malloc = M.getOrInsertDeclaration("malloc", B.ptr(), {B.i64()});
  Function *F = M.createFunction("alloc", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  // Two MiB per request: 64 requests would need 128 MiB without the
  // per-request arena reset (the simulated heap holds 16 MiB).
  Value *P = B.call(Malloc, {B.constI64(2u << 20)}, "p");
  Value *Ok = B.icmp(ICmpInst::Predicate::NE,
                     B.cast_(CastInst::CastOp::PtrToInt, B.i64(), P),
                     B.constI64(0));
  B.ret(B.zext(B.i64(), Ok));

  Interpreter VM(M);
  for (unsigned I = 0; I != 64; ++I) {
    ExecResult R = VM.runRequest("alloc");
    ASSERT_TRUE(R.ok()) << "request " << I;
    EXPECT_EQ(R.ReturnValue, 1u) << "allocation failed on request " << I;
  }
}

TEST(RequestBoundaryTest, RandomnessFailureTrapsAndHealthySourceResumes) {
  Module M("rand");
  IRBuilder B(M);
  Function *Rand = M.getOrInsertDeclaration("smokestack.rand", B.i64(), {});
  Function *F = M.createFunction("draw", B.i64(), {});
  B.setInsertPoint(F->createBlock("entry"));
  B.ret(B.call(Rand, {}));

  DeadSource Dead;
  Interpreter VM(M, &Dead);
  ExecResult R = VM.runRequest("draw");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.Trap, TrapKind::RandomnessFailure);
  EXPECT_EQ(VM.requestTraps(), 1u);
  EXPECT_EQ(VM.requestRecoveries(), 1u);

  // Ops swaps in a healthy source; the same server resumes clean service.
  DeterministicEntropySource Entropy(3);
  PseudoRandomSource Healthy(Entropy);
  VM.setRandomSource(&Healthy);
  ExecResult Ok = VM.runRequest("draw");
  EXPECT_TRUE(Ok.ok());
  EXPECT_EQ(VM.requestsServed(), 2u);
  EXPECT_EQ(VM.requestTraps(), 1u);
}

TEST(RequestBoundaryTest, TrapKindNameCoversRandomnessFailure) {
  EXPECT_STREQ(trapKindName(TrapKind::RandomnessFailure),
               "randomness-failure");
}

} // namespace
