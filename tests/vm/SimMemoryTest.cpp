//===- tests/vm/SimMemoryTest.cpp - Simulated memory tests ---------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/SimMemory.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace smokestack;

TEST(SimMemoryTest, ReadWriteRoundTrip) {
  SimMemory Mem;
  uint64_t Addr = MemoryMap::GlobalsBase + 128;
  const char Data[] = "hello";
  ASSERT_TRUE(Mem.write(Addr, Data, sizeof(Data)));
  char Out[sizeof(Data)];
  ASSERT_TRUE(Mem.read(Addr, Out, sizeof(Out)));
  EXPECT_STREQ(Out, "hello");
}

TEST(SimMemoryTest, UnmappedAccessTraps) {
  SimMemory Mem;
  uint8_t Byte = 0;
  EXPECT_FALSE(Mem.read(0x10, &Byte, 1)) << "null page is unmapped";
  EXPECT_EQ(Mem.getTrap(), TrapKind::UnmappedAccess);
  Mem.clearTrap();
  EXPECT_FALSE(Mem.write(0xdeadbeef00, &Byte, 1));
  EXPECT_EQ(Mem.getTrap(), TrapKind::UnmappedAccess);
}

TEST(SimMemoryTest, CrossSegmentBoundaryTraps) {
  SimMemory Mem;
  // A write straddling the end of the globals segment must fault, like a
  // guard page: segments are not adjacent.
  uint64_t Last = MemoryMap::GlobalsBase + MemoryMap::GlobalsSize - 4;
  uint64_t Value = 0;
  EXPECT_TRUE(Mem.write(Last, &Value, 4));
  EXPECT_FALSE(Mem.write(Last, &Value, 8));
  EXPECT_EQ(Mem.getTrap(), TrapKind::UnmappedAccess);
}

TEST(SimMemoryTest, ReadOnlySegmentRejectsWrites) {
  SimMemory Mem;
  uint32_t Value = 7;
  EXPECT_FALSE(Mem.write(MemoryMap::RODataBase, &Value, 4));
  EXPECT_EQ(Mem.getTrap(), TrapKind::ReadOnlyViolation);
  Mem.clearTrap();
  // The loader bypass must work (this is how the P-BOX is populated).
  EXPECT_TRUE(Mem.write(MemoryMap::RODataBase, &Value, 4,
                        /*IgnoreProtection=*/true));
  uint32_t Out = 0;
  EXPECT_TRUE(Mem.read(MemoryMap::RODataBase, &Out, 4));
  EXPECT_EQ(Out, 7u);
}

TEST(SimMemoryTest, WithinSegmentOverflowSilentlyCorrupts) {
  SimMemory Mem;
  // This property is the foundation of every attack experiment: adjacent
  // objects inside one segment have no red zones.
  uint64_t BufAddr = MemoryMap::StackBase + 100;
  uint64_t VictimAddr = BufAddr + 16;
  uint64_t Sentinel = 0x1122334455667788ULL;
  ASSERT_TRUE(Mem.write(VictimAddr, &Sentinel, 8));
  uint8_t Overflow[24];
  std::memset(Overflow, 0xAA, sizeof(Overflow));
  ASSERT_TRUE(Mem.write(BufAddr, Overflow, sizeof(Overflow)))
      << "24-byte write into a 16-byte gap must NOT fault";
  uint64_t Clobbered = 0;
  ASSERT_TRUE(Mem.read(VictimAddr, &Clobbered, 8));
  EXPECT_EQ(Clobbered & 0xFFFFFFFFFFFFFF00ULL, 0xAAAAAAAAAAAAAA00ULL >> 8 << 8);
}

TEST(SimMemoryTest, LoadStoreIntWidths) {
  SimMemory Mem;
  uint64_t Addr = MemoryMap::HeapBase + 64;
  ASSERT_TRUE(Mem.storeInt(Addr, 8, 0x0102030405060708ULL));
  uint64_t Out = 0;
  ASSERT_TRUE(Mem.loadInt(Addr, 4, Out));
  EXPECT_EQ(Out, 0x05060708u) << "little-endian low word";
  ASSERT_TRUE(Mem.loadInt(Addr, 1, Out));
  EXPECT_EQ(Out, 0x08u);
  ASSERT_TRUE(Mem.storeInt(Addr + 16, 2, 0xBEEF));
  ASSERT_TRUE(Mem.loadInt(Addr + 16, 2, Out));
  EXPECT_EQ(Out, 0xBEEFu);
}

TEST(SimMemoryTest, ReadCString) {
  SimMemory Mem;
  uint64_t Addr = MemoryMap::GlobalsBase;
  ASSERT_TRUE(Mem.write(Addr, "abc\0def", 8));
  std::string Out;
  ASSERT_TRUE(Mem.readCString(Addr, Out));
  EXPECT_EQ(Out, "abc");
  ASSERT_TRUE(Mem.readCString(Addr + 4, Out));
  EXPECT_EQ(Out, "def");
}

TEST(SimMemoryTest, HeapAllocAlignsAndExhausts) {
  SimMemory Mem;
  uint64_t A = Mem.heapAlloc(10);
  uint64_t B = Mem.heapAlloc(1);
  EXPECT_EQ(A % 16, 0u);
  EXPECT_EQ(B, A + 16u) << "10 bytes round up to one 16-byte granule";
  EXPECT_EQ(Mem.heapAlloc(MemoryMap::HeapSize), 0u) << "exhaustion returns 0";
}

TEST(SimMemoryTest, HeapAllocRejectsOverflowingSizes) {
  SimMemory Mem;
  uint64_t Before = Mem.heapBytesUsed();
  // A size within a granule of UINT64_MAX used to wrap to a tiny value
  // inside alignTo and slip past the bounds check. It must fail cleanly.
  EXPECT_EQ(Mem.heapAlloc(UINT64_MAX - 5), 0u);
  EXPECT_EQ(Mem.heapAlloc(UINT64_MAX), 0u);
  EXPECT_EQ(Mem.heapAlloc(MemoryMap::HeapSize + 1), 0u);
  EXPECT_EQ(Mem.heapBytesUsed(), Before)
      << "failed allocations must not move the cursor";
  // A legitimate allocation still works after the rejections.
  EXPECT_NE(Mem.heapAlloc(32), 0u);
}

TEST(SimMemoryTest, ResetHeapZeroesExactlyTheAllocatedPrefix) {
  SimMemory Mem;
  uint64_t A = Mem.heapAlloc(16);
  uint64_t Sentinel = 0x4141414141414141ULL;
  ASSERT_TRUE(Mem.write(A, &Sentinel, 8));
  // An out-of-bounds scribble past the cursor (within-segment, so no trap).
  uint64_t Beyond = A + 64;
  ASSERT_TRUE(Mem.write(Beyond, &Sentinel, 8));
  EXPECT_EQ(Mem.resetHeap(), 16u) << "reset reports the allocated prefix";
  uint64_t Out = 1;
  ASSERT_TRUE(Mem.read(A, &Out, 8));
  EXPECT_EQ(Out, 0u) << "allocated prefix is scrubbed";
  ASSERT_TRUE(Mem.read(Beyond, &Out, 8));
  EXPECT_EQ(Out, Sentinel)
      << "bytes past the cursor survive reset (documented attack semantics)";
}

TEST(SimMemoryTest, StackSegmentBounds) {
  SimMemory Mem;
  uint64_t Value = 1;
  EXPECT_TRUE(Mem.write(MemoryMap::StackTop - 8, &Value, 8));
  EXPECT_FALSE(Mem.write(MemoryMap::StackTop, &Value, 8))
      << "above the stack top is unmapped";
  EXPECT_TRUE(Mem.write(MemoryMap::StackBase, &Value, 8));
  EXPECT_FALSE(Mem.write(MemoryMap::StackBase - 8, &Value, 8))
      << "below the stack base is unmapped (guard)";
}
