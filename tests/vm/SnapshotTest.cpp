//===- tests/vm/SnapshotTest.cpp - VM snapshot/restore tests --------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The snapshot/restore equivalence contract (vm/Snapshot.h): restoring an
// Interpreter from its post-load snapshot must be bitwise indistinguishable
// from constructing a fresh one — the memory image, heap cursor, global
// layout, counters, and every subsequent execution result. These tests pin
// the contract at the single-VM level; the pool-level differential proof
// lives in tests/runtime/SnapshotDifferentialTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "vm/Snapshot.h"

#include "ir/IRBuilder.h"
#include "rng/Entropy.h"
#include "rng/Pseudo.h"
#include "vm/Interpreter.h"

#include "gtest/gtest.h"

using namespace smokestack;

namespace {

/// A module that dirties every restorable dimension: a writable global
/// counter, a read-only table (lives in ROData like the P-BOX), a heap
/// allocation per request, stack frames, and an on-demand trap.
void buildStatefulModule(Module &M) {
  IRBuilder B(M);
  GlobalVariable *Ctr = M.createGlobal("counter", B.i64(), {5});
  M.createGlobal("table", B.getContext().getArrayTy(B.i8(), 256),
                 {0xAB, 0xCD, 0xEF}, /*ReadOnly=*/true);
  Function *Malloc = M.getOrInsertDeclaration("malloc", B.ptr(), {B.i64()});
  Function *Trap =
      M.getOrInsertDeclaration("smokestack.trap", B.voidTy(), {B.i64()});
  Function *Rand = M.getOrInsertDeclaration("smokestack.rand", B.i64(), {});

  // driver(fail): bump the counter, alloc 4 KiB, store a draw into a local,
  // then trap or return the counter value.
  Function *Driver = M.createFunction("driver", B.i64(), {B.i64()});
  BasicBlock *Entry = Driver->createBlock("entry");
  BasicBlock *Boom = Driver->createBlock("boom");
  BasicBlock *Fine = Driver->createBlock("fine");
  B.setInsertPoint(Entry);
  Value *Next = B.add(B.load(B.i64(), Ctr), B.constI64(1));
  B.store(Next, Ctr);
  AllocaInst *Local = B.alloca_(B.getContext().getArrayTy(B.i8(), 128), "l");
  B.store(B.call(Rand, {}), Local);
  B.call(Malloc, {B.constI64(4096)});
  B.condBr(B.icmp(ICmpInst::Predicate::NE, Driver->getArg(0), B.constI64(0)),
           Boom, Fine);
  B.setInsertPoint(Boom);
  B.call(Trap, {B.constI64(0)});
  B.ret(B.constI64(0));
  B.setInsertPoint(Fine);
  B.ret(Next);
}

/// Dirties \p VM: a few clean requests, a trapped one, queued input.
void dirty(Interpreter &VM) {
  ASSERT_TRUE(VM.runRequest("driver", {0}).ok());
  ASSERT_TRUE(VM.runRequest("driver", {0}).ok());
  ASSERT_FALSE(VM.runRequest("driver", {1}).ok());
  VM.pushInputString("stale-attacker-record");
}

void expectImagesEqual(const VmSnapshot::SegmentImage &A,
                       const VmSnapshot::SegmentImage &B, const char *What) {
  EXPECT_EQ(A.TouchedLo, B.TouchedLo) << What;
  EXPECT_EQ(A.TouchedHi, B.TouchedHi) << What;
  EXPECT_EQ(A.Bytes, B.Bytes) << What;
}

TEST(SnapshotTest, RestoreReproducesPostLoadStateBitwise) {
  Module M("snap");
  buildStatefulModule(M);
  DeterministicEntropySource Entropy(11);
  PseudoRandomSource Rng(Entropy);
  Interpreter VM(M, &Rng);

  VmSnapshot S = VM.captureSnapshot();
  EXPECT_GT(S.imageBytes(), 0u) << "globals must produce a non-empty image";

  dirty(VM);
  VM.restoreFromSnapshot(S);

  // Re-capturing after restore must reproduce the original image exactly:
  // same touched ranges, same bytes, same cursor, same layout.
  VmSnapshot S2 = VM.captureSnapshot();
  expectImagesEqual(S.Globals, S2.Globals, "globals image");
  expectImagesEqual(S.ROData, S2.ROData, "rodata image");
  expectImagesEqual(S.Heap, S2.Heap, "heap image");
  expectImagesEqual(S.Stack, S2.Stack, "stack image");
  EXPECT_EQ(S.HeapCursor, S2.HeapCursor);
  EXPECT_EQ(S.GlobalAddresses.size(), S2.GlobalAddresses.size());
  for (const auto &[Name, Addr] : S.GlobalAddresses) {
    auto It = S2.GlobalAddresses.find(Name);
    ASSERT_NE(It, S2.GlobalAddresses.end()) << Name;
    EXPECT_EQ(It->second, Addr) << Name;
  }
}

TEST(SnapshotTest, RestoredVmMatchesFreshVmOnIdenticalRequests) {
  Module M("snap");
  buildStatefulModule(M);

  // Restored VM: capture, dirty, restore, then serve with a fresh stream.
  DeterministicEntropySource EntropyA(3);
  PseudoRandomSource RngA(EntropyA);
  Interpreter Restored(M, &RngA);
  VmSnapshot S = Restored.captureSnapshot();
  dirty(Restored);
  Restored.restoreFromSnapshot(S);
  DeterministicEntropySource EntropyA2(77);
  PseudoRandomSource RngA2(EntropyA2);
  Restored.setRandomSource(&RngA2);

  // Fresh VM: constructed from scratch with the identically seeded stream.
  DeterministicEntropySource EntropyB(77);
  PseudoRandomSource RngB(EntropyB);
  Interpreter Fresh(M, &RngB);

  for (unsigned I = 0; I != 8; ++I) {
    uint64_t Fail = (I == 5) ? 1 : 0;
    ExecResult RA = Restored.runRequest("driver", {Fail});
    ExecResult RB = Fresh.runRequest("driver", {Fail});
    EXPECT_EQ(RA.Trap, RB.Trap) << "request " << I;
    EXPECT_EQ(RA.ReturnValue, RB.ReturnValue) << "request " << I;
    EXPECT_EQ(RA.Steps, RB.Steps) << "request " << I;
  }
  EXPECT_EQ(Restored.requestsServed(), Fresh.requestsServed());
  EXPECT_EQ(Restored.requestTraps(), Fresh.requestTraps());
  EXPECT_EQ(Restored.requestRecoveries(), Fresh.requestRecoveries());
  EXPECT_EQ(Restored.output(), Fresh.output());
}

TEST(SnapshotTest, RestoreClearsTrapCountersAndQueuedInput) {
  Module M("snap");
  buildStatefulModule(M);
  DeterministicEntropySource Entropy(5);
  PseudoRandomSource Rng(Entropy);
  Interpreter VM(M, &Rng);
  VmSnapshot S = VM.captureSnapshot();

  dirty(VM);
  EXPECT_GT(VM.requestsServed(), 0u);
  EXPECT_GT(VM.requestTraps(), 0u);

  VM.restoreFromSnapshot(S);
  EXPECT_EQ(VM.memory().getTrap(), TrapKind::None);
  EXPECT_EQ(VM.requestsServed(), 0u);
  EXPECT_EQ(VM.requestTraps(), 0u);
  EXPECT_EQ(VM.requestRecoveries(), 0u);
  EXPECT_TRUE(VM.output().empty());

  // The global's captured initial value is back and the layout survives.
  uint64_t CtrAddr = VM.getGlobalAddress("counter");
  ASSERT_NE(CtrAddr, 0u);
  uint64_t Ctr = 0;
  ASSERT_TRUE(VM.memory().loadInt(CtrAddr, 8, Ctr));
  EXPECT_EQ(Ctr, 5u) << "mutated global must revert to its initializer";

  // The read-only table (ROData restore-skip path) is intact.
  uint64_t TblAddr = VM.getGlobalAddress("table");
  ASSERT_NE(TblAddr, 0u);
  uint64_t Tbl = 0;
  ASSERT_TRUE(VM.memory().loadInt(TblAddr, 4, Tbl));
  EXPECT_EQ(Tbl & 0xFFFFFFu, 0xEFCDABu) << "little-endian {AB,CD,EF}";
}

TEST(SnapshotTest, HeapCursorRestartsAtCaptureState) {
  Module M("snap");
  buildStatefulModule(M);
  DeterministicEntropySource Entropy(9);
  PseudoRandomSource Rng(Entropy);
  Interpreter VM(M, &Rng);
  VmSnapshot S = VM.captureSnapshot();

  uint64_t FirstFresh = VM.memory().heapAlloc(10);
  ASSERT_NE(FirstFresh, 0u);
  dirty(VM);
  VM.restoreFromSnapshot(S);
  EXPECT_EQ(VM.memory().heapBytesUsed(), S.HeapCursor);
  EXPECT_EQ(VM.memory().heapAlloc(10), FirstFresh)
      << "the bump cursor must restart exactly where capture left it";
}

} // namespace
