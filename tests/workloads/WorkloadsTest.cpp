//===- tests/workloads/WorkloadsTest.cpp - Benchmark kernel tests --------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "rng/AesCtr.h"
#include "rng/Pseudo.h"
#include "rng/RdRand.h"

#include <gtest/gtest.h>

using namespace smokestack;

namespace {

class WorkloadTest : public ::testing::TestWithParam<unsigned> {
protected:
  const Workload &kernel() const { return allWorkloads()[GetParam()]; }
};

} // namespace

TEST(WorkloadsTest, SuiteShape) {
  auto Kernels = allWorkloads();
  ASSERT_EQ(Kernels.size(), 14u);
  unsigned IOBound = 0;
  for (const Workload &Kernel : Kernels)
    IOBound += Kernel.IOBound;
  EXPECT_EQ(IOBound, 2u) << "two I/O-bound server models";
}

/// The central correctness property: frame randomization must not change
/// what any kernel computes. The checksum of a hardened run equals the
/// baseline's for every kernel and every RNG scheme.
TEST_P(WorkloadTest, RandomizationPreservesResults) {
  const Workload &Kernel = kernel();
  uint64_t Baseline = Kernel.Run(nullptr, 32);

  DeterministicEntropySource E1(1), E2(2), E3(3);
  PseudoRandomSource Pseudo(E1);
  AesCtrRandomSource Aes10(E2, 10);
  RdRandSource RdRand(E3);
  EXPECT_EQ(Kernel.Run(&Pseudo, 32), Baseline) << Kernel.Name;
  EXPECT_EQ(Kernel.Run(&Aes10, 32), Baseline) << Kernel.Name;
  EXPECT_EQ(Kernel.Run(&RdRand, 32), Baseline) << Kernel.Name;
}

TEST_P(WorkloadTest, DeterministicBaseline) {
  const Workload &Kernel = kernel();
  EXPECT_EQ(Kernel.Run(nullptr, 16), Kernel.Run(nullptr, 16)) << Kernel.Name;
}

TEST_P(WorkloadTest, WorkScalesOutput) {
  // More work must visit more frames (checksums accumulate), so results
  // for different Work values should differ for these kernels.
  const Workload &Kernel = kernel();
  EXPECT_NE(Kernel.Run(nullptr, 8), Kernel.Run(nullptr, 24)) << Kernel.Name;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadTest,
                         ::testing::Range(0u, 14u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           std::string Name =
                               allWorkloads()[Info.param].Name;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });
