#!/usr/bin/env python3
"""CI perf-regression gate over the committed bench baselines.

Compares a freshly produced bench JSON against the committed baseline of
the same bench and fails (exit 1) when:

  * a throughput metric dropped more than --max-drop-pct below the
    baseline (default 25%), or
  * for the chaos soak, the outcome digest differs from the baseline while
    the run parameters (requests, seed, workers, fault rate) match — the
    digest is bit-deterministic, so any mismatch is a real behavior
    change, not noise.

Supported bench kinds (selected by the "bench"/"benchmark" key):

  soak_chaos        gates requests_per_sec and the exact digest
  soak_scaling      gates requests_per_sec of the matching sweep points
  interp_throughput gates max_speedup (a machine-relative ratio, so it
                    transfers across runner generations better than raw
                    steps/sec)
  request_reset     gates restore_speedup_vs_rebuild (snapshot restore vs
                    full VM reconstruction — machine-relative like
                    max_speedup)

Only the Python standard library is used.

Usage:
  check_bench_regression.py BASELINE CANDIDATE [--max-drop-pct PCT]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def ok(msg):
    print(f"ok: {msg}")
    return 0


def check_drop(name, base, cand, max_drop_pct):
    """Fails when cand fell more than max_drop_pct below base."""
    if base <= 0:
        return ok(f"{name}: baseline {base} not gateable")
    drop_pct = (base - cand) / base * 100.0
    if drop_pct > max_drop_pct:
        return fail(
            f"{name}: {cand:.1f} is {drop_pct:.1f}% below baseline "
            f"{base:.1f} (limit {max_drop_pct:.0f}%)"
        )
    return ok(f"{name}: {cand:.1f} vs baseline {base:.1f} ({drop_pct:+.1f}%)")


def same_params(base, cand, keys):
    return all(base.get(k) == cand.get(k) for k in keys)


def check_soak_chaos(base, cand, max_drop_pct):
    rc = check_drop(
        "requests_per_sec",
        base["requests_per_sec"],
        cand["requests_per_sec"],
        max_drop_pct,
    )
    if same_params(base, cand, ["requests", "seed", "workers", "fault_rate"]):
        if base["digest"] != cand["digest"]:
            rc |= fail(
                f"digest {cand['digest']} != baseline {base['digest']} "
                "for identical parameters (determinism break)"
            )
        else:
            rc |= ok(f"digest matches baseline exactly ({base['digest']})")
    else:
        rc |= ok("digest not compared (run parameters differ from baseline)")
    return rc


def check_soak_scaling(base, cand, max_drop_pct):
    rc = 0
    if not same_params(base, cand, ["requests", "seed", "fault_rate"]):
        print("note: scaling parameters differ from baseline; "
              "gating matching sweep points only on throughput ratio")
    base_points = {p["workers"]: p for p in base["sweep"]}
    compared = 0
    for p in cand["sweep"]:
        b = base_points.get(p["workers"])
        if b is None or not same_params(base, cand,
                                        ["requests", "seed", "fault_rate"]):
            continue
        compared += 1
        rc |= check_drop(
            f"workers={p['workers']} requests_per_sec",
            b["requests_per_sec"],
            p["requests_per_sec"],
            max_drop_pct,
        )
        if b["digest"] != p["digest"]:
            rc |= fail(
                f"workers={p['workers']} digest {p['digest']} != baseline "
                f"{b['digest']} (determinism break)"
            )
    if compared == 0:
        rc |= ok("no directly comparable sweep points; nothing gated")
    return rc


def check_interp(base, cand, max_drop_pct):
    return check_drop(
        "max_speedup", base["max_speedup"], cand["max_speedup"], max_drop_pct
    )


def check_request_reset(base, cand, max_drop_pct):
    return check_drop(
        "restore_speedup_vs_rebuild",
        base["restore_speedup_vs_rebuild"],
        cand["restore_speedup_vs_rebuild"],
        max_drop_pct,
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-drop-pct", type=float, default=25.0)
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)

    kind_of = lambda d: d.get("bench") or d.get("benchmark")
    kind = kind_of(base)
    if kind != kind_of(cand):
        return fail(
            f"bench kind mismatch: baseline {kind}, candidate {kind_of(cand)}"
        )

    checks = {
        "soak_chaos": check_soak_chaos,
        "soak_scaling": check_soak_scaling,
        "interp_throughput": check_interp,
        "request_reset": check_request_reset,
    }
    if kind not in checks:
        return fail(f"unknown bench kind {kind!r}")
    print(f"checking {kind}: {args.candidate} against {args.baseline}")
    return checks[kind](base, cand, args.max_drop_pct)


if __name__ == "__main__":
    sys.exit(main())
