#!/usr/bin/env python3
"""CI perf-regression gate over the committed bench baselines.

Compares a freshly produced bench JSON against the committed baseline of
the same bench and fails (exit 1) when:

  * a throughput metric dropped more than --max-drop-pct below the
    baseline (default 25%), or
  * for the soaks, the outcome digest differs from the baseline while
    the run parameters (requests, seed, workers, fault rate) match — the
    digest is bit-deterministic, so any mismatch is a real behavior
    change, not noise.

A malformed input (missing "bench" kind, missing gated field) is reported
as a clear REGRESSION line naming the file and the field, never as a
Python traceback: a gate that crashes is a gate that silently stops
gating once someone renames a key.

Supported bench kinds (selected by the "bench"/"benchmark" key):

  soak_chaos        gates requests_per_sec and the exact digest
  soak_scaling      gates requests_per_sec and digest of the matching
                    sweep points, and of the matching net_sweep points
                    (keyed by connections × shards) when both files
                    carry one
  soak_net_chaos    gates requests_per_sec, the exact wire digest, and
                    the wire-vs-in-process and accounting-identity
                    verdicts
  interp_throughput gates max_speedup (a machine-relative ratio, so it
                    transfers across runner generations better than raw
                    steps/sec)
  request_reset     gates restore_speedup_vs_rebuild (snapshot restore vs
                    full VM reconstruction — machine-relative like
                    max_speedup)
  interp_jit        gates per-kernel JIT-vs-decoded digest identity (any
                    mismatch is a correctness bug, not noise), the
                    min_jit_speedup_vs_decoded ratio, and its >= 2x floor;
                    a candidate with jit_available false (non-x86-64
                    runner) passes with a note
  attack_corpus     gates the defeat-rate invariants of the DOP attack
                    corpus (smokestack must defeat >= 99% of attacks and
                    strictly beat every baseline defense; undefended
                    attacks must land >= 95%), spec distinctness, the
                    in-process rerun verdict, and the exact corpus digest
                    when the (seed, specs, budget) parameters match the
                    baseline

Only the Python standard library is used.

Usage:
  check_bench_regression.py BASELINE CANDIDATE [--max-drop-pct PCT]
"""

import argparse
import json
import sys


class GateError(Exception):
    """A malformed input that makes the gate impossible to evaluate."""


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def ok(msg):
    print(f"ok: {msg}")
    return 0


def require(d, key, where):
    """d[key], or a GateError naming the file and the missing field."""
    if not isinstance(d, dict) or key not in d:
        raise GateError(f"{where}: missing required field {key!r}")
    return d[key]


def check_drop(name, base, cand, max_drop_pct):
    """Fails when cand fell more than max_drop_pct below base."""
    if not isinstance(base, (int, float)) or not isinstance(cand, (int, float)):
        raise GateError(f"{name}: non-numeric value (base {base!r}, "
                        f"candidate {cand!r})")
    if base <= 0:
        return ok(f"{name}: baseline {base} not gateable")
    drop_pct = (base - cand) / base * 100.0
    if drop_pct > max_drop_pct:
        return fail(
            f"{name}: {cand:.1f} is {drop_pct:.1f}% below baseline "
            f"{base:.1f} (limit {max_drop_pct:.0f}%)"
        )
    return ok(f"{name}: {cand:.1f} vs baseline {base:.1f} ({drop_pct:+.1f}%)")


def same_params(base, cand, keys):
    return all(base.get(k) == cand.get(k) for k in keys)


def check_soak_chaos(base, cand, max_drop_pct):
    rc = check_drop(
        "requests_per_sec",
        require(base, "requests_per_sec", "baseline"),
        require(cand, "requests_per_sec", "candidate"),
        max_drop_pct,
    )
    if same_params(base, cand, ["requests", "seed", "workers", "fault_rate"]):
        base_digest = require(base, "digest", "baseline")
        cand_digest = require(cand, "digest", "candidate")
        if base_digest != cand_digest:
            rc |= fail(
                f"digest {cand_digest} != baseline {base_digest} "
                "for identical parameters (determinism break)"
            )
        else:
            rc |= ok(f"digest matches baseline exactly ({base_digest})")
    else:
        rc |= ok("digest not compared (run parameters differ from baseline)")
    return rc


def check_soak_net_chaos(base, cand, max_drop_pct):
    rc = check_drop(
        "requests_per_sec",
        require(base, "requests_per_sec", "baseline"),
        require(cand, "requests_per_sec", "candidate"),
        max_drop_pct,
    )
    # These verdicts are parameter-independent: the wire digest must equal
    # the in-process digest and the accounting identity must hold on every
    # run, whatever its size.
    for verdict in ("wire_equals_in_process", "identity_holds"):
        if require(cand, verdict, "candidate") is not True:
            rc |= fail(f"candidate {verdict} is not true")
        else:
            rc |= ok(f"candidate {verdict}")
    # Shard-isolation accounting. shard_mode is required so a run from
    # before the multi-process front-end (old JSON shape) is an explicit
    # gate error, not a silent pass. When the run injected shard kills,
    # at least one restart must have been booked: a kill campaign with
    # zero restarts means the chaos never reached the child processes.
    shard_mode = require(cand, "shard_mode", "candidate")
    if shard_mode not in ("thread", "process"):
        rc |= fail(f"candidate shard_mode {shard_mode!r} is not "
                   "'thread' or 'process'")
    else:
        rc |= ok(f"candidate shard_mode {shard_mode!r}")
    if require(cand, "shard_kills_enabled", "candidate"):
        restarts = require(cand, "shard_restarts", "candidate")
        if not isinstance(restarts, int) or restarts < 1:
            rc |= fail(f"shard kills enabled but shard_restarts is "
                       f"{restarts!r} (expected >= 1)")
        else:
            rc |= ok(f"shard kills enabled and {restarts} restart(s) booked")
    # shard_mode is deliberately NOT a digest-comparison parameter: the
    # digest must be invariant across thread and process mode, so a
    # process-mode candidate is compared against a thread-mode baseline.
    if same_params(base, cand,
                   ["requests", "seed", "fault_rate", "connections"]):
        base_digest = require(base, "digest", "baseline")
        cand_digest = require(cand, "digest", "candidate")
        if base_digest != cand_digest:
            rc |= fail(
                f"wire digest {cand_digest} != baseline {base_digest} "
                "for identical parameters (determinism break)"
            )
        else:
            rc |= ok(f"wire digest matches baseline exactly ({base_digest})")
    else:
        rc |= ok("digest not compared (run parameters differ from baseline)")
    return rc


def check_soak_scaling(base, cand, max_drop_pct):
    rc = 0
    comparable = same_params(base, cand, ["requests", "seed", "fault_rate"])
    if not comparable:
        print("note: scaling parameters differ from baseline; "
              "gating matching sweep points only on throughput ratio")
    base_points = {
        require(p, "workers", "baseline sweep point"): p
        for p in require(base, "sweep", "baseline")
    }
    compared = 0
    for p in require(cand, "sweep", "candidate"):
        workers = require(p, "workers", "candidate sweep point")
        b = base_points.get(workers)
        if b is None or not comparable:
            continue
        compared += 1
        rc |= check_drop(
            f"workers={workers} requests_per_sec",
            require(b, "requests_per_sec", "baseline sweep point"),
            require(p, "requests_per_sec", "candidate sweep point"),
            max_drop_pct,
        )
        if require(b, "digest", "baseline sweep point") != \
                require(p, "digest", "candidate sweep point"):
            rc |= fail(
                f"workers={workers} digest {p['digest']} != baseline "
                f"{b['digest']} (determinism break)"
            )
    # The wire dimension: net_sweep points are keyed (connections, shards).
    # Older baselines predate the socket front-end and carry none; that is
    # a note, not a failure.
    base_net = {
        (require(p, "connections", "baseline net_sweep point"),
         require(p, "shards", "baseline net_sweep point")): p
        for p in base.get("net_sweep", [])
    }
    for p in cand.get("net_sweep", []):
        key = (require(p, "connections", "candidate net_sweep point"),
               require(p, "shards", "candidate net_sweep point"))
        if require(p, "wire_matches_in_process",
                   "candidate net_sweep point") is not True:
            rc |= fail(
                f"net conns={key[0]} shards={key[1]}: wire digest does not "
                "match the in-process digest"
            )
        b = base_net.get(key)
        if b is None or not comparable:
            continue
        compared += 1
        rc |= check_drop(
            f"net conns={key[0]} shards={key[1]} requests_per_sec",
            require(b, "requests_per_sec", "baseline net_sweep point"),
            require(p, "requests_per_sec", "candidate net_sweep point"),
            max_drop_pct,
        )
        if require(b, "digest", "baseline net_sweep point") != \
                require(p, "digest", "candidate net_sweep point"):
            rc |= fail(
                f"net conns={key[0]} shards={key[1]} digest {p['digest']} "
                f"!= baseline {b['digest']} (determinism break)"
            )
    if compared == 0:
        rc |= ok("no directly comparable sweep points; nothing gated")
    return rc


def check_interp(base, cand, max_drop_pct):
    return check_drop(
        "max_speedup",
        require(base, "max_speedup", "baseline"),
        require(cand, "max_speedup", "candidate"),
        max_drop_pct,
    )


def check_interp_jit(base, cand, max_drop_pct):
    if require(cand, "jit_available", "candidate") is not True:
        return ok("jit unavailable on this runner; nothing gated")
    rc = 0
    for kernel in require(cand, "kernels", "candidate"):
        name = require(kernel, "name", "candidate kernel")
        dec = require(kernel, "digest_decoded", f"candidate kernel {name}")
        jit = require(kernel, "digest_jit", f"candidate kernel {name}")
        if dec != jit:
            rc |= fail(
                f"{name}: jit digest {jit} != decoded digest {dec} "
                "(identity violation — the JIT changed observable behavior)"
            )
        else:
            rc |= ok(f"{name}: jit digest equals decoded digest ({dec})")
    cand_min = require(cand, "min_jit_speedup_vs_decoded", "candidate")
    if require(base, "jit_available", "baseline") is True:
        rc |= check_drop(
            "min_jit_speedup_vs_decoded",
            require(base, "min_jit_speedup_vs_decoded", "baseline"),
            cand_min,
            max_drop_pct,
        )
    else:
        rc |= ok("baseline has no jit measurements; gating the floor only")
    if not isinstance(cand_min, (int, float)) or cand_min < 2.0:
        rc |= fail(
            f"min_jit_speedup_vs_decoded {cand_min} is below the 2.0x floor"
        )
    else:
        rc |= ok(f"min_jit_speedup_vs_decoded {cand_min:.2f} >= 2.0x floor")
    return rc


def check_attack_corpus(base, cand, max_drop_pct):
    del max_drop_pct  # rate floors are absolute, not baseline-relative
    rc = 0

    # The committed baseline is required to be a real corpus: at least 200
    # distinct specs. A shrunken baseline would quietly weaken every gate
    # below, so it is an error in its own right.
    base_specs = require(base, "specs", "baseline")
    if not isinstance(base_specs, int) or base_specs < 200:
        rc |= fail(f"baseline specs {base_specs!r} is below the 200-spec "
                   "floor for a committed corpus")

    # Determinism verdicts computed in-process by the corpus driver.
    if require(cand, "rerun_checked", "candidate") is True:
        if require(cand, "rerun_bit_identical", "candidate") is not True:
            rc |= fail("candidate rerun was not bit-identical "
                       "(determinism break)")
        else:
            rc |= ok("candidate rerun bit-identical")
    else:
        rc |= ok("candidate skipped the rerun check (-no-rerun)")
    cand_specs = require(cand, "specs", "candidate")
    distinct = require(cand, "distinct_specs", "candidate")
    if distinct != cand_specs:
        rc |= fail(f"candidate enumerated {distinct} distinct specs of "
                   f"{cand_specs} (generator collision)")
    else:
        rc |= ok(f"candidate specs all distinct ({distinct})")

    # Defeat-rate policy. The table is keyed by defense name so a renamed
    # or missing column is an explicit gate error.
    rates = {}
    for entry in require(cand, "defenses", "candidate"):
        name = require(entry, "defense", "candidate defense entry")
        rates[name] = require(entry, "defeat_rate",
                              f"candidate defense {name}")
        if require(entry, "attacks", f"candidate defense {name}") \
                != cand_specs:
            rc |= fail(f"{name}: ran {entry['attacks']} attacks, "
                       f"expected {cand_specs}")
    for needed in ("none", "smokestack"):
        if needed not in rates:
            raise GateError(f"candidate: no defeat-rate entry for {needed!r}")
    if rates["none"] > 0.05:
        rc |= fail(f"undefended defeat rate {rates['none']:.4f} exceeds "
                   "0.05 — the compiled attacks themselves are broken")
    else:
        rc |= ok(f"undefended defeat rate {rates['none']:.4f} <= 0.05 "
                 f"(attacks land {100 * (1 - rates['none']):.1f}%)")
    if rates["smokestack"] < 0.99:
        rc |= fail(f"smokestack defeat rate {rates['smokestack']:.4f} is "
                   "below the 0.99 floor")
    else:
        rc |= ok(f"smokestack defeat rate {rates['smokestack']:.4f} "
                 ">= 0.99")
    for name, rate in rates.items():
        if name == "smokestack":
            continue
        if rates["smokestack"] <= rate:
            rc |= fail(f"smokestack defeat rate {rates['smokestack']:.4f} "
                       f"does not strictly beat {name} ({rate:.4f})")
        else:
            rc |= ok(f"smokestack strictly beats {name} "
                     f"({rates['smokestack']:.4f} > {rate:.4f})")

    # Bit-exact digest comparison when the corpus coordinates match. The
    # digest folds every spec fingerprint and every cell outcome, so any
    # mismatch is a real behavior change in the generator, the lowering,
    # the VM, or a defense — never noise.
    if same_params(base, cand, ["root_seed", "specs", "budget"]):
        base_digest = require(base, "digest", "baseline")
        cand_digest = require(cand, "digest", "candidate")
        if base_digest != cand_digest:
            rc |= fail(f"corpus digest {cand_digest} != baseline "
                       f"{base_digest} for identical parameters "
                       "(determinism break)")
        else:
            rc |= ok(f"corpus digest matches baseline exactly "
                     f"({base_digest})")
    else:
        rc |= ok("digest not compared (corpus parameters differ from "
                 "baseline)")
    return rc


def check_request_reset(base, cand, max_drop_pct):
    return check_drop(
        "restore_speedup_vs_rebuild",
        require(base, "restore_speedup_vs_rebuild", "baseline"),
        require(cand, "restore_speedup_vs_rebuild", "candidate"),
        max_drop_pct,
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-drop-pct", type=float, default=25.0)
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.candidate) as f:
            cand = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load bench JSON: {e}")

    kind_of = lambda d: d.get("bench") or d.get("benchmark")
    kind = kind_of(base)
    if kind is None:
        return fail(
            f"{args.baseline}: no 'bench'/'benchmark' key; cannot gate"
        )
    if kind != kind_of(cand):
        return fail(
            f"bench kind mismatch: baseline {kind}, candidate {kind_of(cand)}"
        )

    checks = {
        "soak_chaos": check_soak_chaos,
        "soak_scaling": check_soak_scaling,
        "soak_net_chaos": check_soak_net_chaos,
        "interp_throughput": check_interp,
        "interp_jit": check_interp_jit,
        "request_reset": check_request_reset,
        "attack_corpus": check_attack_corpus,
    }
    if kind not in checks:
        return fail(f"unknown bench kind {kind!r}")
    print(f"checking {kind}: {args.candidate} against {args.baseline}")
    try:
        return checks[kind](base, cand, args.max_drop_pct)
    except GateError as e:
        return fail(str(e))


if __name__ == "__main__":
    sys.exit(main())
