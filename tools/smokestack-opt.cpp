//===- tools/smokestack-opt.cpp - Command-line pass driver ----------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// opt-style driver: read a textual Mini-IR module, apply defense passes,
/// print and/or execute the result.
///
///   smokestack-opt [options] <file.ir | ->
///     -smokestack            apply the Smokestack pass
///     -static-perm[=SEED]    apply compile-time permutation
///     -entry-pad[=SEED]      apply Forrest-style entry padding
///     -canary[=GUARD]        apply the stack protector
///     -run=FUNC              execute FUNC in the VM after the passes
///     -rng=SCHEME            pseudo | aes1 | aes10 | rdrand  (default aes10)
///     -input=TEXT            queue TEXT as one input record (repeatable)
///     -print                 print the final module (default unless -run)
///     -verify                verify and report instead of printing
///     -stats                 print the stack-usage analysis and exit
///
/// Example:
///   smokestack-opt -smokestack -run=main -rng=aes10 program.ir
///
//===----------------------------------------------------------------------===//

#include "core/SmokestackPass.h"
#include "core/StackUsageAnalysis.h"
#include "defenses/BaselineDefenses.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "rng/AesCtr.h"
#include "rng/Pseudo.h"
#include "rng/RdRand.h"
#include "support/RawStream.h"
#include "vm/Interpreter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace smokestack;

namespace {

struct Options {
  std::vector<std::string> PassSpecs;
  std::string RunFunction;
  std::string RngScheme = "aes10";
  std::string Engine = "decoded";
  std::vector<std::string> Inputs;
  std::string InputFile;
  bool Print = false;
  bool Verify = false;
  bool Stats = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [-smokestack] [-static-perm[=SEED]] "
               "[-entry-pad[=SEED]] [-canary[=GUARD]]\n"
               "          [-run=FUNC] [-rng=pseudo|aes1|aes10|rdrand] "
               "[-engine=decoded|treewalk]\n"
               "          [-input=TEXT]... [-print] [-verify] [-stats] "
               "<file.ir|->\n",
               Argv0);
  return 2;
}

std::unique_ptr<RandomSource> makeRng(const std::string &Scheme,
                                      EntropySource &Entropy) {
  if (Scheme == "pseudo")
    return std::make_unique<PseudoRandomSource>(Entropy);
  if (Scheme == "aes1")
    return std::make_unique<AesCtrRandomSource>(Entropy, 1);
  if (Scheme == "aes10")
    return std::make_unique<AesCtrRandomSource>(Entropy, 10);
  if (Scheme == "rdrand")
    return std::make_unique<RdRandSource>(Entropy);
  return nullptr;
}

uint64_t specSeed(const std::string &Spec, uint64_t Default) {
  size_t Eq = Spec.find('=');
  if (Eq == std::string::npos)
    return Default;
  return std::strtoull(Spec.c_str() + Eq + 1, nullptr, 0);
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-smokestack" || Arg.rfind("-static-perm", 0) == 0 ||
        Arg.rfind("-entry-pad", 0) == 0 || Arg.rfind("-canary", 0) == 0) {
      Opts.PassSpecs.push_back(Arg);
    } else if (Arg.rfind("-run=", 0) == 0) {
      Opts.RunFunction = Arg.substr(5);
    } else if (Arg.rfind("-rng=", 0) == 0) {
      Opts.RngScheme = Arg.substr(5);
    } else if (Arg.rfind("-engine=", 0) == 0) {
      Opts.Engine = Arg.substr(8);
    } else if (Arg.rfind("-input=", 0) == 0) {
      Opts.Inputs.push_back(Arg.substr(7));
    } else if (Arg == "-print") {
      Opts.Print = true;
    } else if (Arg == "-verify") {
      Opts.Verify = true;
    } else if (Arg == "-stats") {
      Opts.Stats = true;
    } else if (Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return usage(argv[0]);
    } else {
      if (!Opts.InputFile.empty())
        return usage(argv[0]);
      Opts.InputFile = Arg;
    }
  }
  if (Opts.InputFile.empty())
    return usage(argv[0]);

  // Read the module text.
  std::string Text;
  if (Opts.InputFile == "-") {
    char Chunk[4096];
    size_t Got;
    while ((Got = std::fread(Chunk, 1, sizeof(Chunk), stdin)) > 0)
      Text.append(Chunk, Got);
  } else {
    std::ifstream In(Opts.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   Opts.InputFile.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }

  ParseResult Parsed = parseModule(Text, Opts.InputFile);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.InputFile.c_str(),
                 Parsed.Error.c_str());
    return 1;
  }
  Module &M = *Parsed.M;

  std::vector<std::string> Errors;
  if (!verifyModule(M, &Errors)) {
    std::fprintf(stderr, "error: input module does not verify:\n");
    for (const std::string &E : Errors)
      std::fprintf(stderr, "  %s\n", E.c_str());
    return 1;
  }

  // Apply the requested passes in order.
  PassManager PM;
  for (const std::string &Spec : Opts.PassSpecs) {
    if (Spec == "-smokestack")
      PM.addPass(std::make_unique<SmokestackPass>());
    else if (Spec.rfind("-static-perm", 0) == 0)
      PM.addPass(std::make_unique<StaticPermutationPass>(specSeed(Spec, 1)));
    else if (Spec.rfind("-entry-pad", 0) == 0)
      PM.addPass(std::make_unique<EntryPaddingPass>(specSeed(Spec, 1)));
    else if (Spec.rfind("-canary", 0) == 0)
      PM.addPass(std::make_unique<StackCanaryPass>(
          specSeed(Spec, 0x00ff1234cafe0000ULL)));
  }
  if (PM.size())
    PM.run(M);

  if (Opts.Stats) {
    RawFdOStream OS(stdout);
    printStackUsage(analyzeModuleStackUsage(M), OS);
    return 0;
  }

  if (Opts.Verify) {
    Errors.clear();
    bool Ok = verifyModule(M, &Errors);
    std::printf("%s\n", Ok ? "module verifies" : "module INVALID");
    for (const std::string &E : Errors)
      std::printf("  %s\n", E.c_str());
    return Ok ? 0 : 1;
  }

  if (!Opts.RunFunction.empty()) {
    SystemEntropySource Entropy;
    std::unique_ptr<RandomSource> Rng = makeRng(Opts.RngScheme, Entropy);
    if (!Rng) {
      std::fprintf(stderr, "error: unknown rng scheme '%s'\n",
                   Opts.RngScheme.c_str());
      return 1;
    }
    if (Opts.Engine != "decoded" && Opts.Engine != "treewalk") {
      std::fprintf(stderr, "error: unknown engine '%s'\n", Opts.Engine.c_str());
      return 1;
    }
    InterpreterOptions VMOpts;
    VMOpts.UseDecodedEngine = Opts.Engine == "decoded";
    Interpreter VM(M, Rng.get(), VMOpts);
    for (const std::string &Input : Opts.Inputs)
      VM.pushInputString(Input);
    ExecResult R = VM.run(Opts.RunFunction);
    if (!VM.output().empty())
      std::fputs(VM.output().c_str(), stdout);
    if (!R.ok()) {
      std::fprintf(stderr, "trap: %s (%s)\n", trapKindName(R.Trap),
                   R.Message.c_str());
      return 1;
    }
    std::printf("-> %lld (after %llu steps)\n",
                (long long)(int64_t)R.ReturnValue,
                (unsigned long long)R.Steps);
    return 0;
  }

  // Default action: print.
  RawFdOStream OS(stdout);
  M.print(OS);
  return 0;
}
