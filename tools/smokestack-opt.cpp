//===- tools/smokestack-opt.cpp - Command-line pass driver ----------------===//
//
// Part of the Smokestack reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// opt-style driver: read a textual Mini-IR module, apply defense passes,
/// print and/or execute the result.
///
///   smokestack-opt [options] <file.ir | ->
///     -smokestack            apply the Smokestack pass
///     -static-perm[=SEED]    apply compile-time permutation
///     -entry-pad[=SEED]      apply Forrest-style entry padding
///     -canary[=GUARD]        apply the stack protector
///     -run=FUNC              execute FUNC in the VM after the passes
///     -rng=SCHEME            pseudo | aes1 | aes10 | rdrand  (default aes10)
///     -resilient             wrap the RNG in the fallback chain
///                            (scheme -> AES-10 -> fail closed)
///     -faults=SEED:RATE      run under a seeded fault-injection plan that
///                            fails DRNG draws and rekey entropy at RATE
///     -input=TEXT            queue TEXT as one input record (repeatable)
///     -workers=N             serve -run through a WorkerPool of N
///                            interpreter threads (0 = all cores); implies
///                            the pool's deterministic per-request RNG
///                            chain, so -rng/-resilient are ignored
///     -requests=M            pool mode: number of requests to serve
///                            (default 1); every request queues the same
///                            -input records
///     -seed=S                pool mode: root seed for per-request
///                            randomness derivation (default 7)
///     -chaos=RATE            pool mode: inject contained worker crashes at
///                            RATE (and hard worker deaths at RATE/5) per
///                            attempt; crashed requests retry under a
///                            per-request attempt budget and quarantine on
///                            exhaustion. The exact accounting identity
///                            (submitted == completed + shed + poisoned)
///                            is verified; a violation exits nonzero.
///     -serve                 serve -run over loopback TCP through the
///                            epoll socket front-end (net/SocketServer.h)
///                            instead of submitting to the pool directly;
///                            an in-process client drives -requests=M
///                            requests through the wire as a self-test.
///                            SIGTERM requests a graceful stop: the server
///                            finishes what it can and drains
///     -shards=N              serve mode: number of WorkerPool shards
///                            behind the front-end (default 1); results
///                            are bit-identical at any shard count
///     -shard-mode=thread|process
///                            serve mode: run each shard as an in-process
///                            WorkerPool (thread, the default) or as a
///                            forked child process with crash containment
///                            and kill-and-replay (process); results are
///                            bit-identical in either mode
///     -drain-timeout=MS      serve mode: graceful-drain budget (default
///                            5000). If in-flight requests outlive it they
///                            are cancelled and poison-accounted, and the
///                            tool exits nonzero (exit code 4)
///     -fuel=N                VM step budget per request (default 2e8);
///                            mostly for tests that need a request to
///                            outlive the drain budget
///     -metrics=FILE          after -run: export every counter and latency
///                            histogram as Prometheus text to FILE and as
///                            smokestack-metrics-v1 JSON to FILE.json;
///                            enables obs timing (and, in pool mode,
///                            per-request span tracing), so latency
///                            histograms are populated
///     -print                 print the final module (default unless -run)
///     -verify                verify and report instead of printing
///     -stats                 without -run: print the stack-usage analysis;
///                            with -run: also print every nonzero counter
///                            (fault, degradation, VM bookkeeping) after
///                            execution
///
/// Example:
///   smokestack-opt -smokestack -run=main -rng=aes10 program.ir
///
//===----------------------------------------------------------------------===//

#include "core/SmokestackPass.h"
#include "core/StackUsageAnalysis.h"
#include "defenses/BaselineDefenses.h"
#include "faults/FaultInjector.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"
#include "jit/JitAbi.h"
#include "net/Client.h"
#include "net/SocketServer.h"
#include "obs/MetricsRegistry.h"
#include "obs/Trace.h"
#include "rng/AesCtr.h"
#include "rng/Pseudo.h"
#include "rng/RdRand.h"
#include "rng/Resilient.h"
#include "runtime/WorkerPool.h"
#include "support/RawStream.h"
#include "support/Statistics.h"
#include "vm/Interpreter.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace smokestack;

namespace {

struct Options {
  std::vector<std::string> PassSpecs;
  std::string RunFunction;
  std::string RngScheme = "aes10";
  std::string Engine = "decoded";
  std::vector<std::string> Inputs;
  std::string InputFile;
  bool Print = false;
  bool Verify = false;
  bool Stats = false;
  bool Resilient = false;
  bool Faults = false;
  uint64_t FaultSeed = 0;
  double FaultRate = 0.0;
  bool Pool = false;
  unsigned Workers = 1;
  uint64_t PoolRequests = 1;
  uint64_t PoolSeed = 7;
  bool Chaos = false;
  double ChaosRate = 0.0;
  bool Serve = false;
  unsigned Shards = 1;
  ShardMode Mode = ShardMode::Thread;
  unsigned DrainTimeoutMillis = 5000;
  uint64_t Fuel = 0; ///< 0 = interpreter default.
  std::string MetricsFile;
};

/// The SIGTERM → requestStop() bridge for -serve. requestStop() is
/// async-signal-safe (atomic store + pipe write); the main thread sees
/// stopRequested() and performs the actual drain.
SocketServer *ServeInstance = nullptr;

void onSigTerm(int) {
  if (ServeInstance)
    ServeInstance->requestStop();
}

/// Writes \p Registry to \p Path (Prometheus text) and \p Path.json.
/// Returns false (with a diagnostic) when either write fails.
bool writeMetrics(const MetricsRegistry &Registry, const std::string &Path) {
  struct Target {
    std::string Path;
    std::string Content;
  } Targets[] = {{Path, Registry.exportText()},
                 {Path + ".json", Registry.exportJson()}};
  for (const Target &T : Targets) {
    std::ofstream Out(T.Path);
    Out << T.Content;
    if (!Out) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   T.Path.c_str());
      return false;
    }
  }
  std::printf("metrics: wrote %s and %s.json\n", Path.c_str(), Path.c_str());
  return true;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [-smokestack] [-static-perm[=SEED]] "
               "[-entry-pad[=SEED]] [-canary[=GUARD]]\n"
               "          [-run=FUNC] [-rng=pseudo|aes1|aes10|rdrand] "
               "[-engine=jit|decoded|treewalk]\n"
               "          [-resilient] [-faults=SEED:RATE]\n"
               "          [-workers=N] [-requests=M] [-seed=S] "
               "[-chaos=RATE] [-metrics=FILE]\n"
               "          [-serve] [-shards=N] [-shard-mode=thread|process] "
               "[-drain-timeout=MS] [-fuel=N]\n"
               "          [-input=TEXT]... [-print] [-verify] [-stats] "
               "<file.ir|->\n",
               Argv0);
  return 2;
}

std::unique_ptr<RandomSource> makeRng(const std::string &Scheme,
                                      EntropySource &Entropy) {
  if (Scheme == "pseudo")
    return std::make_unique<PseudoRandomSource>(Entropy);
  if (Scheme == "aes1")
    return std::make_unique<AesCtrRandomSource>(Entropy, 1);
  if (Scheme == "aes10")
    return std::make_unique<AesCtrRandomSource>(Entropy, 10);
  if (Scheme == "rdrand")
    return std::make_unique<RdRandSource>(Entropy);
  return nullptr;
}

uint64_t specSeed(const std::string &Spec, uint64_t Default) {
  size_t Eq = Spec.find('=');
  if (Eq == std::string::npos)
    return Default;
  return std::strtoull(Spec.c_str() + Eq + 1, nullptr, 0);
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-smokestack" || Arg.rfind("-static-perm", 0) == 0 ||
        Arg.rfind("-entry-pad", 0) == 0 || Arg.rfind("-canary", 0) == 0) {
      Opts.PassSpecs.push_back(Arg);
    } else if (Arg.rfind("-run=", 0) == 0) {
      Opts.RunFunction = Arg.substr(5);
    } else if (Arg.rfind("-rng=", 0) == 0) {
      Opts.RngScheme = Arg.substr(5);
    } else if (Arg.rfind("-engine=", 0) == 0) {
      Opts.Engine = Arg.substr(8);
    } else if (Arg.rfind("-input=", 0) == 0) {
      Opts.Inputs.push_back(Arg.substr(7));
    } else if (Arg.rfind("-workers=", 0) == 0) {
      Opts.Pool = true;
      Opts.Workers =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 9, nullptr, 0));
    } else if (Arg.rfind("-requests=", 0) == 0) {
      Opts.PoolRequests = std::strtoull(Arg.c_str() + 10, nullptr, 0);
    } else if (Arg.rfind("-seed=", 0) == 0) {
      Opts.PoolSeed = std::strtoull(Arg.c_str() + 6, nullptr, 0);
    } else if (Arg.rfind("-chaos=", 0) == 0) {
      double Rate = std::strtod(Arg.c_str() + 7, nullptr);
      if (Rate < 0.0 || Rate > 1.0) {
        std::fprintf(stderr, "bad -chaos rate '%s' (want [0,1])\n",
                     Arg.c_str());
        return usage(argv[0]);
      }
      Opts.Chaos = true;
      Opts.ChaosRate = Rate;
    } else if (Arg == "-serve") {
      Opts.Serve = true;
    } else if (Arg.rfind("-shards=", 0) == 0) {
      Opts.Shards =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 8, nullptr, 0));
    } else if (Arg.rfind("-shard-mode=", 0) == 0) {
      std::string Mode = Arg.substr(12);
      if (Mode == "thread") {
        Opts.Mode = ShardMode::Thread;
      } else if (Mode == "process") {
        Opts.Mode = ShardMode::Process;
      } else {
        std::fprintf(stderr, "error: unknown -shard-mode=%s "
                             "(thread|process)\n",
                     Mode.c_str());
        return usage(argv[0]);
      }
    } else if (Arg.rfind("-drain-timeout=", 0) == 0 ||
               Arg.rfind("--drain-timeout=", 0) == 0) {
      Opts.DrainTimeoutMillis = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + Arg.find('=') + 1, nullptr, 0));
    } else if (Arg.rfind("-fuel=", 0) == 0) {
      Opts.Fuel = std::strtoull(Arg.c_str() + 6, nullptr, 0);
    } else if (Arg == "-resilient") {
      Opts.Resilient = true;
    } else if (Arg.rfind("-faults=", 0) == 0) {
      unsigned long long Seed = 0;
      double Rate = 0.0;
      if (std::sscanf(Arg.c_str() + 8, "%llu:%lf", &Seed, &Rate) != 2 ||
          Rate < 0.0 || Rate > 1.0) {
        std::fprintf(stderr, "bad -faults spec '%s' (want SEED:RATE)\n",
                     Arg.c_str());
        return usage(argv[0]);
      }
      Opts.Faults = true;
      Opts.FaultSeed = Seed;
      Opts.FaultRate = Rate;
    } else if (Arg.rfind("-metrics=", 0) == 0) {
      Opts.MetricsFile = Arg.substr(9);
      if (Opts.MetricsFile.empty()) {
        std::fprintf(stderr, "bad -metrics spec (want -metrics=FILE)\n");
        return usage(argv[0]);
      }
    } else if (Arg == "-print") {
      Opts.Print = true;
    } else if (Arg == "-verify") {
      Opts.Verify = true;
    } else if (Arg == "-stats") {
      Opts.Stats = true;
    } else if (Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return usage(argv[0]);
    } else {
      if (!Opts.InputFile.empty())
        return usage(argv[0]);
      Opts.InputFile = Arg;
    }
  }
  if (Opts.InputFile.empty())
    return usage(argv[0]);

  // Read the module text.
  std::string Text;
  if (Opts.InputFile == "-") {
    char Chunk[4096];
    size_t Got;
    while ((Got = std::fread(Chunk, 1, sizeof(Chunk), stdin)) > 0)
      Text.append(Chunk, Got);
  } else {
    std::ifstream In(Opts.InputFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   Opts.InputFile.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }

  ParseResult Parsed = parseModule(Text, Opts.InputFile);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.InputFile.c_str(),
                 Parsed.Error.c_str());
    return 1;
  }
  Module &M = *Parsed.M;

  std::vector<std::string> Errors;
  if (!verifyModule(M, &Errors)) {
    std::fprintf(stderr, "error: input module does not verify:\n");
    for (const std::string &E : Errors)
      std::fprintf(stderr, "  %s\n", E.c_str());
    return 1;
  }

  // Apply the requested passes in order.
  PassManager PM;
  for (const std::string &Spec : Opts.PassSpecs) {
    if (Spec == "-smokestack")
      PM.addPass(std::make_unique<SmokestackPass>());
    else if (Spec.rfind("-static-perm", 0) == 0)
      PM.addPass(std::make_unique<StaticPermutationPass>(specSeed(Spec, 1)));
    else if (Spec.rfind("-entry-pad", 0) == 0)
      PM.addPass(std::make_unique<EntryPaddingPass>(specSeed(Spec, 1)));
    else if (Spec.rfind("-canary", 0) == 0)
      PM.addPass(std::make_unique<StackCanaryPass>(
          specSeed(Spec, 0x00ff1234cafe0000ULL)));
  }
  if (PM.size())
    PM.run(M);

  if (Opts.Stats && Opts.RunFunction.empty()) {
    RawFdOStream OS(stdout);
    printStackUsage(analyzeModuleStackUsage(M), OS);
    return 0;
  }

  if (Opts.Verify) {
    Errors.clear();
    bool Ok = verifyModule(M, &Errors);
    std::printf("%s\n", Ok ? "module verifies" : "module INVALID");
    for (const std::string &E : Errors)
      std::printf("  %s\n", E.c_str());
    return Ok ? 0 : 1;
  }

  if (!Opts.RunFunction.empty()) {
    if (Opts.Engine != "jit" && Opts.Engine != "decoded" &&
        Opts.Engine != "treewalk") {
      std::fprintf(stderr, "error: unknown engine '%s'\n", Opts.Engine.c_str());
      return 1;
    }
    if (Opts.Engine == "jit" && !jitAvailable()) {
      std::fprintf(stderr, "warning: JIT unavailable on this host; "
                           "falling back to the decoded engine\n");
      Opts.Engine = "decoded";
    }

    InterpreterOptions VMOpts;
    VMOpts.UseDecodedEngine = Opts.Engine != "treewalk";
    VMOpts.UseJit = Opts.Engine == "jit";
    if (Opts.Fuel)
      VMOpts.Fuel = Opts.Fuel;

    // -metrics wants the latency histograms populated, so turn on the
    // process-wide timing probes before anything serves.
    if (!Opts.MetricsFile.empty())
      enableObsTiming();

    if (Opts.Pool || Opts.Serve) {
      // Pool mode: the WorkerPool owns per-request deterministic RNG
      // chains and per-request fault injectors, so -rng/-resilient (and
      // the -faults seed) are superseded by -seed.
      PoolOptions PO;
      PO.Workers = Opts.Workers;
      PO.RootSeed = Opts.PoolSeed;
      PO.Function = Opts.RunFunction;
      PO.InterpOpts = VMOpts;
      if (Opts.Faults) {
        PO.InjectFaults = true;
        PO.FaultTemplate.site(FaultSite::RdRandStep) = {
            Opts.FaultRate, RdRandSource::RetryLimit, 0};
        PO.FaultTemplate.site(FaultSite::RekeyEntropy) = {Opts.FaultRate, 1,
                                                          0};
        PO.FaultTemplate.site(FaultSite::AesNiPresence) = {
            Opts.FaultRate / 4, 1, 0};
      }
      if (Opts.Chaos) {
        PO.InjectFaults = true;
        PO.FaultTemplate.site(FaultSite::WorkerCrash) = {Opts.ChaosRate, 1,
                                                         0};
        PO.FaultTemplate.site(FaultSite::WorkerDeath) = {
            Opts.ChaosRate / 5, 1, 0};
        PO.Supervision.AttemptsMin = 2;
        PO.Supervision.AttemptsMax = 4;
      }

      std::vector<std::vector<uint8_t>> Records;
      for (const std::string &Input : Opts.Inputs)
        Records.emplace_back(Input.begin(), Input.end());

      TraceRecorder Recorder;
      if (!Opts.MetricsFile.empty())
        PO.Tracer = &Recorder;

      if (Opts.Serve) {
        // Serve mode: the identical pool configuration behind the epoll
        // socket front-end, self-tested by an in-process loopback client
        // pipelining the same requests through the wire protocol.
        ServerOptions SO;
        SO.Shards = Opts.Shards ? Opts.Shards : 1;
        SO.Mode = Opts.Mode;
        SO.DrainTimeoutMillis = Opts.DrainTimeoutMillis;
        SO.Pool = PO;
        // Before any fork or socket write: SIGPIPE must be an errno and
        // the SIGCHLD fan-out handler must predate the first shard child.
        installServerSignalDefaults();
        SocketServer Server(M, SO);
        ServeInstance = &Server;
        std::signal(SIGTERM, onSigTerm);
        std::string Err;
        if (!Server.start(&Err)) {
          std::fprintf(stderr, "error: -serve: %s\n", Err.c_str());
          return 1;
        }
        std::printf("serve: listening on 127.0.0.1:%u (%u shards)\n",
                    Server.port(), SO.Shards);

        BlockingClient Client;
        uint64_t Sent = 0, Answered = 0, Ok = 0, Trapped = 0, Other = 0;
        bool Stalled = false;
        if (!Client.connectTo(Server.port(), &Err)) {
          std::fprintf(stderr, "error: -serve self-connect: %s\n",
                       Err.c_str());
          Stalled = true;
        }
        constexpr uint64_t Window = 16;
        while (!Stalled && Answered != Opts.PoolRequests &&
               !Server.stopRequested()) {
          while (Sent != Opts.PoolRequests && Sent - Answered < Window) {
            WireRequest Req;
            Req.Index = Sent;
            Req.Inputs = Records;
            if (!Client.sendRequest(Req)) {
              Stalled = true;
              break;
            }
            ++Sent;
          }
          if (Stalled)
            break;
          WireResponse Resp;
          if (!Client.recvResponse(Resp, /*TimeoutMillis=*/2000)) {
            // A request that never answers lands here; the drain below
            // decides whether that is a timeout worth a nonzero exit.
            Stalled = true;
            break;
          }
          ++Answered;
          if (Resp.Status == WireStatus::Ok)
            ++Ok;
          else if (Resp.Status == WireStatus::Trapped)
            ++Trapped;
          else
            ++Other;
        }

        DrainReport Rep = Server.drain();
        std::signal(SIGTERM, SIG_DFL);
        ServeInstance = nullptr;

        std::printf("serve: %u shards, %llu sent, %llu answered, %llu ok, "
                    "%llu trapped, %llu other, %llu delivered\n",
                    SO.Shards, (unsigned long long)Sent,
                    (unsigned long long)Answered, (unsigned long long)Ok,
                    (unsigned long long)Trapped, (unsigned long long)Other,
                    (unsigned long long)Rep.Net.ResponsesDelivered);
        if (!Opts.MetricsFile.empty()) {
          MetricsRegistry Registry;
          Rep.Pool.exportMetrics(Registry);
          Rep.Net.exportMetrics(Registry);
          Recorder.exportMetrics(Registry);
          if (!writeMetrics(Registry, Opts.MetricsFile))
            return 1;
        }
        if (!Rep.IdentityOk) {
          std::fprintf(stderr,
                       "error: wire accounting identity violated\n");
          return 3;
        }
        if (!Rep.Clean) {
          std::fprintf(stderr,
                       "drain: TIMEOUT after %u ms; %llu in-flight "
                       "request(s) poisoned\n",
                       Opts.DrainTimeoutMillis,
                       (unsigned long long)Rep.Pool.Poisoned);
          return 4;
        }
        return Trapped == 0 && Other == 0 && !Stalled ? 0 : 1;
      }

      WorkerPool Pool(M, PO);
      Pool.start();
      for (uint64_t I = 0; I != Opts.PoolRequests; ++I)
        Pool.submit({I, Records});
      std::vector<PoolOutcome> Outcomes = Pool.finish();

      uint64_t Ok = 0, Trapped = 0;
      for (const PoolOutcome &O : Outcomes)
        O.ok() ? ++Ok : ++Trapped;
      const PoolBooks &B = Pool.books();
      std::printf("pool: %u workers, %llu requests, %llu ok, %llu trapped\n",
                  Pool.workerCount(),
                  (unsigned long long)Outcomes.size(),
                  (unsigned long long)Ok, (unsigned long long)Trapped);
      if (Opts.Chaos)
        std::printf("supervision: %llu crashes contained, %llu deaths, "
                    "%llu restarts, %llu retries, %llu poisoned\n",
                    (unsigned long long)B.CrashesContained,
                    (unsigned long long)B.WorkerDeaths,
                    (unsigned long long)B.WorkerRestarts,
                    (unsigned long long)B.Retries,
                    (unsigned long long)B.Poisoned);
      if (!B.accountingIdentityHolds()) {
        std::fprintf(stderr,
                     "error: accounting identity violated: submitted %llu != "
                     "completed %llu + shed %llu + poisoned %llu\n",
                     (unsigned long long)B.Submitted,
                     (unsigned long long)B.Completed,
                     (unsigned long long)B.Shed,
                     (unsigned long long)B.Poisoned);
        return 3;
      }
      if (!Outcomes.empty() && Outcomes.front().ok())
        std::printf("-> %lld (after %llu steps)\n",
                    (long long)(int64_t)Outcomes.front().ReturnValue,
                    (unsigned long long)Outcomes.front().Steps);
      if (Opts.Stats) {
        std::printf("counters:\n");
        for (const Statistic *S : allStatistics())
          if (S->value() != 0)
            std::printf("  %10llu %-28s %s\n",
                        (unsigned long long)S->value(), S->name(),
                        S->description());
        std::printf("rng: pool chain (%llu draws, %llu degraded, "
                    "%llu fail-closed)\n",
                    (unsigned long long)B.Rng.DrawsServed,
                    (unsigned long long)B.Rng.DegradedDraws,
                    (unsigned long long)B.Rng.FailClosedDraws);
        if (Opts.Faults)
          std::printf("faults: %llu injected, %llu events\n",
                      (unsigned long long)B.totalInjectedProbes(),
                      (unsigned long long)B.totalInjectedEvents());
      }
      if (!Opts.MetricsFile.empty()) {
        MetricsRegistry Registry;
        B.exportMetrics(Registry);
        Recorder.exportMetrics(Registry);
        if (!writeMetrics(Registry, Opts.MetricsFile))
          return 1;
      }
      return Trapped == 0 ? 0 : 1;
    }

    // The fault scope must cover RNG construction too: a plan that kills
    // rekey entropy from probe one must be able to hit the initial keying.
    FaultPlan Plan;
    Plan.Seed = Opts.FaultSeed;
    if (Opts.Faults) {
      Plan.site(FaultSite::RdRandStep) = {Opts.FaultRate,
                                          RdRandSource::RetryLimit, 0};
      Plan.site(FaultSite::RekeyEntropy) = {Opts.FaultRate, 1, 0};
      Plan.site(FaultSite::AesNiPresence) = {Opts.FaultRate / 4, 1, 0};
    }
    FaultInjector Injector(Plan);
    std::unique_ptr<FaultScope> Scope;
    if (Opts.Faults)
      Scope = std::make_unique<FaultScope>(Injector);

    SystemEntropySource Entropy;
    std::unique_ptr<RandomSource> Rng = makeRng(Opts.RngScheme, Entropy);
    if (!Rng) {
      std::fprintf(stderr, "error: unknown rng scheme '%s'\n",
                   Opts.RngScheme.c_str());
      return 1;
    }
    std::unique_ptr<RandomSource> Fallback;
    std::unique_ptr<ResilientRandomSource> Resilient;
    RandomSource *Active = Rng.get();
    RandomSource *ChainStorage[2];
    if (Opts.Resilient) {
      Fallback = std::make_unique<AesCtrRandomSource>(Entropy, 10);
      ChainStorage[0] = Rng.get();
      ChainStorage[1] = Fallback.get();
      Resilient = std::make_unique<ResilientRandomSource>(
          std::span<RandomSource *const>(ChainStorage, 2));
      Active = Resilient.get();
    }

    Interpreter VM(M, Active, VMOpts);
    for (const std::string &Input : Opts.Inputs)
      VM.pushInputString(Input);
    ExecResult R = VM.run(Opts.RunFunction);
    if (!VM.output().empty())
      std::fputs(VM.output().c_str(), stdout);

    int Exit = 0;
    if (!R.ok()) {
      std::fprintf(stderr, "trap: %s (%s)\n", trapKindName(R.Trap),
                   R.Message.c_str());
      Exit = 1;
    } else {
      std::printf("-> %lld (after %llu steps)\n",
                  (long long)(int64_t)R.ReturnValue,
                  (unsigned long long)R.Steps);
    }
    if (Opts.Stats) {
      std::printf("counters:\n");
      for (const Statistic *S : allStatistics())
        if (S->value() != 0)
          std::printf("  %10llu %-28s %s\n", (unsigned long long)S->value(),
                      S->name(), S->description());
      if (Resilient)
        std::printf("rng: %s (%llu draws, %llu degraded, %llu fail-closed)\n",
                    Resilient->name(),
                    (unsigned long long)Resilient->drawsServed(),
                    (unsigned long long)Resilient->degradedDraws(),
                    (unsigned long long)Resilient->failClosedDraws());
      if (Opts.Faults) {
        uint64_t Probes = 0;
        for (unsigned S = 0; S != NumFaultSites; ++S)
          Probes += Injector.probeCount(static_cast<FaultSite>(S));
        std::printf("faults: %llu probes, %llu injected, %llu events\n",
                    (unsigned long long)Probes,
                    (unsigned long long)Injector.totalInjectedProbes(),
                    (unsigned long long)Injector.totalInjectedEvents());
      }
    }
    if (!Opts.MetricsFile.empty()) {
      MetricsRegistry Registry;
      if (!writeMetrics(Registry, Opts.MetricsFile))
        return 1;
    }
    return Exit;
  }

  // Default action: print.
  RawFdOStream OS(stdout);
  M.print(OS);
  return 0;
}
